//! The filesystem namespace: an inode tree with files, directories,
//! write leases and per-file block lists.
//!
//! Mirrors the namenode-side checks of §II step 1: existence, overwrite
//! permission and safe mode are all enforced here. Files are created
//! *under construction* holding a lease for the creating client; blocks
//! are appended as the client's `addBlock` calls commit previous blocks;
//! `complete` seals the file once every block is acked.

use smarth_core::config::WriteMode;
use smarth_core::error::{DfsError, DfsResult};
use smarth_core::ids::{BlockId, ClientId, ExtendedBlock, FileId, IdGenerator};
use smarth_core::proto::FileStatus;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug)]
struct FileMeta {
    path: String,
    replication: u32,
    block_size: u64,
    mode: WriteMode,
    /// Lease holder while under construction.
    lease: Option<ClientId>,
    blocks: Vec<ExtendedBlock>,
    complete: bool,
}

#[derive(Debug)]
enum INode {
    Dir { children: BTreeMap<String, FileId> },
    File(FileMeta),
}

/// The namespace tree. All methods take `&mut self`; the server wraps the
/// namespace in a mutex (one per volume shard — the id generator is
/// shared across shards so file ids stay globally unique and the
/// sequence is identical whatever the shard count).
#[derive(Debug)]
pub struct FsNamespace {
    inodes: HashMap<FileId, INode>,
    root: FileId,
    ids: Arc<IdGenerator>,
    safe_mode: bool,
}

/// A file detached from one namespace mid-rename, ready to attach under
/// a new path — possibly in a different shard's namespace. Opaque: the
/// inode id and metadata travel together so a cross-shard move cannot
/// lose either.
#[derive(Debug)]
pub struct DetachedFile {
    id: FileId,
    meta: FileMeta,
}

impl DetachedFile {
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The file's blocks, for moving its block records between shard
    /// block managers.
    pub fn blocks(&self) -> &[ExtendedBlock] {
        &self.meta.blocks
    }
}

/// Splits a normalized absolute path into components.
fn components(path: &str) -> DfsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(DfsError::NotFound(format!("path must be absolute: {path}")));
    }
    Ok(path
        .split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect())
}

impl Default for FsNamespace {
    fn default() -> Self {
        Self::new()
    }
}

impl FsNamespace {
    pub fn new() -> Self {
        Self::with_shared_ids(Arc::new(IdGenerator::starting_at(2)))
    }

    /// Builds a namespace drawing file ids from a shared generator.
    /// Every shard of a sharded namenode uses the same generator, so
    /// the allocated id sequence is identical to the single-shard one
    /// under serial traffic. The root keeps the reserved `FileId(1)` in
    /// every shard — it is never handed to clients, so the duplication
    /// across shards is invisible.
    pub fn with_shared_ids(ids: Arc<IdGenerator>) -> Self {
        let root = FileId(1);
        let mut inodes = HashMap::new();
        inodes.insert(
            root,
            INode::Dir {
                children: BTreeMap::new(),
            },
        );
        Self {
            inodes,
            root,
            ids,
            safe_mode: false,
        }
    }

    /// Enables/disables safe mode: while enabled every mutation fails
    /// (§II step 1 check).
    pub fn set_safe_mode(&mut self, on: bool) {
        self.safe_mode = on;
    }

    pub fn safe_mode(&self) -> bool {
        self.safe_mode
    }

    fn check_mutable(&self) -> DfsResult<()> {
        if self.safe_mode {
            Err(DfsError::SafeMode)
        } else {
            Ok(())
        }
    }

    /// Resolves a path to an inode id.
    fn resolve(&self, path: &str) -> DfsResult<FileId> {
        let mut cur = self.root;
        for comp in components(path)? {
            match self.inodes.get(&cur) {
                Some(INode::Dir { children }) => {
                    cur = *children
                        .get(comp)
                        .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
                }
                Some(INode::File(_)) => {
                    return Err(DfsError::NotADirectory(path.to_string()))
                }
                None => return Err(DfsError::NotFound(path.to_string())),
            }
        }
        Ok(cur)
    }

    /// Creates (or returns) the directory chain for every parent of
    /// `path`, returning the immediate parent's id and the final name.
    fn ensure_parents<'p>(&mut self, path: &'p str) -> DfsResult<(FileId, &'p str)> {
        let comps = components(path)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(DfsError::IsADirectory("/".into()));
        };
        let mut cur = self.root;
        for comp in parents {
            let next = match self.inodes.get(&cur) {
                Some(INode::Dir { children }) => children.get(*comp).copied(),
                _ => return Err(DfsError::NotADirectory(path.to_string())),
            };
            cur = match next {
                Some(id) => match self.inodes.get(&id) {
                    Some(INode::Dir { .. }) => id,
                    _ => return Err(DfsError::NotADirectory(path.to_string())),
                },
                None => {
                    let id = FileId(self.ids.allocate());
                    self.inodes.insert(
                        id,
                        INode::Dir {
                            children: BTreeMap::new(),
                        },
                    );
                    match self.inodes.get_mut(&cur) {
                        Some(INode::Dir { children }) => {
                            children.insert((*comp).to_string(), id);
                        }
                        _ => unreachable!("cur is always a dir"),
                    }
                    id
                }
            };
        }
        Ok((cur, name))
    }

    /// §II step 1: the `create()` RPC.
    pub fn create_file(
        &mut self,
        client: ClientId,
        path: &str,
        replication: u32,
        block_size: u64,
        mode: WriteMode,
        overwrite: bool,
    ) -> DfsResult<FileId> {
        self.check_mutable()?;
        if replication == 0 || block_size == 0 {
            return Err(DfsError::internal("replication/block_size must be > 0"));
        }
        let (parent, name) = self.ensure_parents(path)?;
        let existing = match self.inodes.get(&parent) {
            Some(INode::Dir { children }) => children.get(name).copied(),
            _ => unreachable!(),
        };
        if let Some(id) = existing {
            match self.inodes.get(&id) {
                Some(INode::File(_)) if overwrite => {
                    self.remove_inode(parent, name);
                }
                Some(INode::File(_)) => {
                    return Err(DfsError::AlreadyExists(path.to_string()))
                }
                _ => return Err(DfsError::IsADirectory(path.to_string())),
            }
        }
        let id = FileId(self.ids.allocate());
        self.inodes.insert(
            id,
            INode::File(FileMeta {
                path: path.to_string(),
                replication,
                block_size,
                mode,
                lease: Some(client),
                blocks: Vec::new(),
                complete: false,
            }),
        );
        match self.inodes.get_mut(&parent) {
            Some(INode::Dir { children }) => {
                children.insert(name.to_string(), id);
            }
            _ => unreachable!(),
        }
        Ok(id)
    }

    fn remove_inode(&mut self, parent: FileId, name: &str) {
        let removed = match self.inodes.get_mut(&parent) {
            Some(INode::Dir { children }) => children.remove(name),
            _ => None,
        };
        if let Some(id) = removed {
            self.inodes.remove(&id);
        }
    }

    fn file_mut(&mut self, file: FileId) -> DfsResult<&mut FileMeta> {
        match self.inodes.get_mut(&file) {
            Some(INode::File(meta)) => Ok(meta),
            _ => Err(DfsError::NotFound(format!("{file}"))),
        }
    }

    fn file_ref(&self, file: FileId) -> DfsResult<&FileMeta> {
        match self.inodes.get(&file) {
            Some(INode::File(meta)) => Ok(meta),
            _ => Err(DfsError::NotFound(format!("{file}"))),
        }
    }

    fn check_lease(meta: &FileMeta, client: ClientId) -> DfsResult<()> {
        match meta.lease {
            Some(holder) if holder == client => Ok(()),
            _ => Err(DfsError::LeaseExpired(meta.path.clone())),
        }
    }

    /// Appends a freshly allocated block to a file under construction.
    pub fn append_block(
        &mut self,
        client: ClientId,
        file: FileId,
        block: ExtendedBlock,
    ) -> DfsResult<()> {
        self.check_mutable()?;
        let meta = self.file_mut(file)?;
        Self::check_lease(meta, client)?;
        if meta.complete {
            return Err(DfsError::internal(format!(
                "append to completed file {}",
                meta.path
            )));
        }
        meta.blocks.push(block);
        Ok(())
    }

    /// Updates a block in place (commit with final length, or generation
    /// bump after recovery).
    pub fn update_block(
        &mut self,
        client: ClientId,
        file: FileId,
        block: ExtendedBlock,
    ) -> DfsResult<()> {
        self.check_mutable()?;
        let meta = self.file_mut(file)?;
        Self::check_lease(meta, client)?;
        match meta.blocks.iter_mut().find(|b| b.id == block.id) {
            Some(slot) => {
                *slot = block;
                Ok(())
            }
            None => Err(DfsError::UnknownBlock(block.id)),
        }
    }

    /// Removes an abandoned block.
    pub fn remove_block(
        &mut self,
        client: ClientId,
        file: FileId,
        block: BlockId,
    ) -> DfsResult<()> {
        self.check_mutable()?;
        let meta = self.file_mut(file)?;
        Self::check_lease(meta, client)?;
        let before = meta.blocks.len();
        meta.blocks.retain(|b| b.id != block);
        if meta.blocks.len() == before {
            return Err(DfsError::UnknownBlock(block));
        }
        Ok(())
    }

    /// §II step 6: seals the file and releases the lease.
    pub fn complete_file(
        &mut self,
        client: ClientId,
        file: FileId,
        last: Option<ExtendedBlock>,
    ) -> DfsResult<()> {
        self.check_mutable()?;
        let meta = self.file_mut(file)?;
        Self::check_lease(meta, client)?;
        if let Some(last) = last {
            match meta.blocks.iter_mut().find(|b| b.id == last.id) {
                Some(slot) => *slot = last,
                None => return Err(DfsError::UnknownBlock(last.id)),
            }
        }
        meta.complete = true;
        meta.lease = None;
        Ok(())
    }

    /// Block list of a file (for `getBlockLocations`).
    pub fn blocks_of(&self, file: FileId) -> DfsResult<Vec<ExtendedBlock>> {
        Ok(self.file_ref(file)?.blocks.clone())
    }

    /// Write mode recorded at create time.
    pub fn mode_of(&self, file: FileId) -> DfsResult<WriteMode> {
        Ok(self.file_ref(file)?.mode)
    }

    pub fn replication_of(&self, file: FileId) -> DfsResult<u32> {
        Ok(self.file_ref(file)?.replication)
    }

    fn status_of(&self, id: FileId) -> Option<FileStatus> {
        match self.inodes.get(&id)? {
            INode::File(meta) => Some(FileStatus {
                file_id: id,
                path: meta.path.clone(),
                len: meta.blocks.iter().map(|b| b.len).sum(),
                replication: meta.replication,
                block_size: meta.block_size,
                is_dir: false,
                complete: meta.complete,
            }),
            INode::Dir { .. } => Some(FileStatus {
                file_id: id,
                path: String::new(),
                len: 0,
                replication: 0,
                block_size: 0,
                is_dir: true,
                complete: true,
            }),
        }
    }

    /// `getFileInfo`: `None` when the path does not exist.
    pub fn get_file_info(&self, path: &str) -> Option<FileStatus> {
        let id = self.resolve(path).ok()?;
        let mut st = self.status_of(id)?;
        if st.is_dir {
            st.path = path.to_string();
        }
        Some(st)
    }

    pub fn resolve_file(&self, path: &str) -> DfsResult<FileId> {
        let id = self.resolve(path)?;
        match self.inodes.get(&id) {
            Some(INode::File(_)) => Ok(id),
            _ => Err(DfsError::IsADirectory(path.to_string())),
        }
    }

    /// Directory listing, sorted by name.
    pub fn list(&self, path: &str) -> DfsResult<Vec<FileStatus>> {
        let id = self.resolve(path)?;
        match self.inodes.get(&id) {
            Some(INode::Dir { children }) => Ok(children
                .iter()
                .filter_map(|(name, id)| {
                    let mut st = self.status_of(*id)?;
                    if st.is_dir {
                        st.path = format!("{}/{name}", path.trim_end_matches('/'));
                    }
                    Some(st)
                })
                .collect()),
            Some(INode::File(_)) => Ok(vec![self.status_of(id).expect("file status")]),
            None => Err(DfsError::NotFound(path.to_string())),
        }
    }

    /// Deletes a file (not directories, mirroring `hdfs dfs -rm`).
    /// Returns the removed file's id and blocks so the caller can retire
    /// them (and drop its shard routing entries), or `None` if the path
    /// did not exist.
    pub fn delete_file(
        &mut self,
        path: &str,
    ) -> DfsResult<Option<(FileId, Vec<ExtendedBlock>)>> {
        self.check_mutable()?;
        let Ok(comps) = components(path) else {
            return Ok(None);
        };
        let Some((name, _)) = comps.split_last() else {
            return Err(DfsError::IsADirectory("/".into()));
        };
        let Ok(id) = self.resolve(path) else {
            return Ok(None);
        };
        let blocks = match self.inodes.get(&id) {
            Some(INode::File(meta)) => meta.blocks.clone(),
            Some(INode::Dir { .. }) => return Err(DfsError::IsADirectory(path.to_string())),
            None => return Ok(None),
        };
        // Find the parent by resolving the prefix.
        let parent_path: String = {
            let joined = comps[..comps.len() - 1].join("/");
            format!("/{joined}")
        };
        let parent = self.resolve(&parent_path)?;
        self.remove_inode(parent, name);
        Ok(Some((id, blocks)))
    }

    /// First half of a rename: unlinks `src` (a complete file) and
    /// returns its inode for [`FsNamespace::attach_file`] — on this
    /// namespace for a same-shard rename, or on another shard's. The
    /// caller should run [`FsNamespace::check_attach`] on the
    /// destination namespace *first*: attach after a passing check
    /// cannot fail, so the file is never stranded.
    pub fn detach_file(&mut self, src: &str) -> DfsResult<DetachedFile> {
        self.check_mutable()?;
        let comps = components(src)?;
        let Some((name, _)) = comps.split_last() else {
            return Err(DfsError::IsADirectory("/".into()));
        };
        let id = self.resolve(src)?;
        match self.inodes.get(&id) {
            Some(INode::File(meta)) if !meta.complete => {
                return Err(DfsError::LeaseExpired(format!(
                    "rename of file under construction: {src}"
                )))
            }
            Some(INode::File(_)) => {}
            _ => return Err(DfsError::IsADirectory(src.to_string())),
        }
        let parent_path: String = {
            let joined = comps[..comps.len() - 1].join("/");
            format!("/{joined}")
        };
        let parent = self.resolve(&parent_path)?;
        match self.inodes.get_mut(&parent) {
            Some(INode::Dir { children }) => {
                children.remove(*name);
            }
            _ => unreachable!("resolved parent is always a dir"),
        }
        let Some(INode::File(meta)) = self.inodes.remove(&id) else {
            unreachable!("id was checked to be a file above");
        };
        Ok(DetachedFile { id, meta })
    }

    /// Non-mutating preflight for [`FsNamespace::attach_file`]: fails if
    /// `dst` already exists, or a parent component is a file. Missing
    /// parent directories are fine — attach creates them.
    pub fn check_attach(&self, dst: &str) -> DfsResult<()> {
        self.check_mutable()?;
        let comps = components(dst)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(DfsError::IsADirectory("/".into()));
        };
        let mut cur = self.root;
        for comp in parents {
            let next = match self.inodes.get(&cur) {
                Some(INode::Dir { children }) => children.get(*comp).copied(),
                _ => return Err(DfsError::NotADirectory(dst.to_string())),
            };
            match next {
                Some(id) => match self.inodes.get(&id) {
                    Some(INode::Dir { .. }) => cur = id,
                    _ => return Err(DfsError::NotADirectory(dst.to_string())),
                },
                // The rest of the chain does not exist yet; attach will
                // create it.
                None => return Ok(()),
            }
        }
        match self.inodes.get(&cur) {
            Some(INode::Dir { children }) if children.contains_key(*name) => {
                Err(DfsError::AlreadyExists(dst.to_string()))
            }
            _ => Ok(()),
        }
    }

    /// Second half of a rename: links a detached file at `dst`,
    /// rewriting its recorded path. Run [`FsNamespace::check_attach`]
    /// first; after a passing check (with no interleaved mutation — the
    /// server holds the shard locks across both halves) this cannot
    /// fail.
    pub fn attach_file(&mut self, dst: &str, file: DetachedFile) -> DfsResult<FileId> {
        self.check_mutable()?;
        let (parent, name) = self.ensure_parents(dst)?;
        let exists = match self.inodes.get(&parent) {
            Some(INode::Dir { children }) => children.contains_key(name),
            _ => unreachable!("ensure_parents returns a dir"),
        };
        if exists {
            return Err(DfsError::AlreadyExists(dst.to_string()));
        }
        let DetachedFile { id, mut meta } = file;
        meta.path = dst.to_string();
        self.inodes.insert(id, INode::File(meta));
        match self.inodes.get_mut(&parent) {
            Some(INode::Dir { children }) => {
                children.insert(name.to_string(), id);
            }
            _ => unreachable!(),
        }
        Ok(id)
    }

    /// Number of inodes (diagnostics).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarth_core::ids::GenStamp;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);

    fn blk(id: u64, len: u64) -> ExtendedBlock {
        ExtendedBlock::new(BlockId(id), GenStamp::INITIAL, len)
    }

    fn ns_with_file() -> (FsNamespace, FileId) {
        let mut ns = FsNamespace::new();
        let f = ns
            .create_file(C1, "/data/file.bin", 3, 64, WriteMode::Smarth, false)
            .unwrap();
        (ns, f)
    }

    #[test]
    fn create_builds_parent_directories() {
        let (ns, _) = ns_with_file();
        let info = ns.get_file_info("/data").unwrap();
        assert!(info.is_dir);
        let file = ns.get_file_info("/data/file.bin").unwrap();
        assert!(!file.is_dir);
        assert!(!file.complete);
        assert_eq!(file.replication, 3);
    }

    #[test]
    fn duplicate_create_fails_without_overwrite() {
        let (mut ns, _) = ns_with_file();
        let err = ns
            .create_file(C1, "/data/file.bin", 3, 64, WriteMode::Hdfs, false)
            .unwrap_err();
        assert!(matches!(err, DfsError::AlreadyExists(_)));
        // Overwrite replaces the file.
        let f2 = ns
            .create_file(C1, "/data/file.bin", 2, 64, WriteMode::Hdfs, true)
            .unwrap();
        assert_eq!(ns.replication_of(f2).unwrap(), 2);
        assert_eq!(ns.mode_of(f2).unwrap(), WriteMode::Hdfs);
    }

    #[test]
    fn create_over_directory_fails() {
        let (mut ns, _) = ns_with_file();
        let err = ns
            .create_file(C1, "/data", 3, 64, WriteMode::Hdfs, true)
            .unwrap_err();
        assert!(matches!(err, DfsError::IsADirectory(_)));
    }

    #[test]
    fn file_as_path_component_fails() {
        let (mut ns, _) = ns_with_file();
        let err = ns
            .create_file(C1, "/data/file.bin/sub", 3, 64, WriteMode::Hdfs, false)
            .unwrap_err();
        assert!(matches!(err, DfsError::NotADirectory(_)));
    }

    #[test]
    fn relative_paths_rejected() {
        let mut ns = FsNamespace::new();
        assert!(ns
            .create_file(C1, "relative/path", 3, 64, WriteMode::Hdfs, false)
            .is_err());
    }

    #[test]
    fn safe_mode_blocks_mutations() {
        let (mut ns, f) = ns_with_file();
        ns.set_safe_mode(true);
        assert!(matches!(
            ns.create_file(C1, "/x", 3, 64, WriteMode::Hdfs, false),
            Err(DfsError::SafeMode)
        ));
        assert!(matches!(
            ns.append_block(C1, f, blk(1, 0)),
            Err(DfsError::SafeMode)
        ));
        assert!(matches!(ns.delete_file("/data/file.bin"), Err(DfsError::SafeMode)));
        // Reads still work.
        assert!(ns.get_file_info("/data/file.bin").is_some());
        ns.set_safe_mode(false);
        ns.append_block(C1, f, blk(1, 0)).unwrap();
    }

    #[test]
    fn lease_enforcement() {
        let (mut ns, f) = ns_with_file();
        assert!(matches!(
            ns.append_block(C2, f, blk(1, 0)),
            Err(DfsError::LeaseExpired(_))
        ));
        ns.append_block(C1, f, blk(1, 64)).unwrap();
        ns.complete_file(C1, f, None).unwrap();
        // After completion the lease is gone — even C1 cannot append.
        assert!(ns.append_block(C1, f, blk(2, 0)).is_err());
    }

    #[test]
    fn block_lifecycle_and_length() {
        let (mut ns, f) = ns_with_file();
        ns.append_block(C1, f, blk(1, 0)).unwrap();
        ns.update_block(C1, f, blk(1, 64)).unwrap();
        ns.append_block(C1, f, blk(2, 0)).unwrap();
        ns.complete_file(C1, f, Some(blk(2, 40))).unwrap();
        let info = ns.get_file_info("/data/file.bin").unwrap();
        assert!(info.complete);
        assert_eq!(info.len, 104);
        let blocks = ns.blocks_of(f).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].len, 40);
    }

    #[test]
    fn update_unknown_block_fails() {
        let (mut ns, f) = ns_with_file();
        assert!(matches!(
            ns.update_block(C1, f, blk(9, 1)),
            Err(DfsError::UnknownBlock(BlockId(9)))
        ));
    }

    #[test]
    fn abandon_block_removes_it() {
        let (mut ns, f) = ns_with_file();
        ns.append_block(C1, f, blk(1, 0)).unwrap();
        ns.remove_block(C1, f, BlockId(1)).unwrap();
        assert!(ns.blocks_of(f).unwrap().is_empty());
        assert!(ns.remove_block(C1, f, BlockId(1)).is_err());
    }

    #[test]
    fn listing_and_delete() {
        let (mut ns, _) = ns_with_file();
        ns.create_file(C1, "/data/other.bin", 3, 64, WriteMode::Hdfs, false)
            .unwrap();
        let entries = ns.list("/data").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path, "/data/file.bin");
        assert_eq!(entries[1].path, "/data/other.bin");

        let removed = ns.delete_file("/data/file.bin").unwrap();
        assert!(removed.is_some());
        assert!(ns.get_file_info("/data/file.bin").is_none());
        assert_eq!(ns.delete_file("/data/file.bin").unwrap(), None);
        assert!(matches!(
            ns.delete_file("/data"),
            Err(DfsError::IsADirectory(_))
        ));
    }

    #[test]
    fn detach_attach_renames_within_and_across_namespaces() {
        let (mut ns, f) = ns_with_file();
        ns.append_block(C1, f, blk(1, 64)).unwrap();
        ns.complete_file(C1, f, None).unwrap();

        // Same-namespace rename.
        ns.check_attach("/moved/here.bin").unwrap();
        let d = ns.detach_file("/data/file.bin").unwrap();
        assert_eq!(d.id(), f);
        assert_eq!(d.blocks().len(), 1);
        let id = ns.attach_file("/moved/here.bin", d).unwrap();
        assert_eq!(id, f);
        assert!(ns.get_file_info("/data/file.bin").is_none());
        let st = ns.get_file_info("/moved/here.bin").unwrap();
        assert_eq!(st.path, "/moved/here.bin");
        assert_eq!(st.len, 64);

        // Cross-namespace move (what a cross-shard rename does).
        let mut other = FsNamespace::new();
        other.check_attach("/far/away.bin").unwrap();
        let d = ns.detach_file("/moved/here.bin").unwrap();
        other.attach_file("/far/away.bin", d).unwrap();
        assert!(ns.get_file_info("/moved/here.bin").is_none());
        assert_eq!(other.get_file_info("/far/away.bin").unwrap().len, 64);

        // Destination collisions and bad parents are caught up front.
        assert!(matches!(
            other.check_attach("/far/away.bin"),
            Err(DfsError::AlreadyExists(_))
        ));
        assert!(matches!(
            other.check_attach("/far/away.bin/sub"),
            Err(DfsError::NotADirectory(_))
        ));
    }

    #[test]
    fn detach_rejects_open_files_and_directories() {
        let (mut ns, _) = ns_with_file();
        assert!(matches!(
            ns.detach_file("/data/file.bin"),
            Err(DfsError::LeaseExpired(_))
        ));
        assert!(matches!(
            ns.detach_file("/data"),
            Err(DfsError::IsADirectory(_))
        ));
        assert!(matches!(
            ns.detach_file("/ghost"),
            Err(DfsError::NotFound(_))
        ));
    }

    #[test]
    fn shared_ids_never_collide_across_namespaces() {
        let ids = Arc::new(IdGenerator::starting_at(2));
        let mut a = FsNamespace::with_shared_ids(ids.clone());
        let mut b = FsNamespace::with_shared_ids(ids);
        let fa = a
            .create_file(C1, "/va/f", 1, 64, WriteMode::Smarth, false)
            .unwrap();
        let fb = b
            .create_file(C1, "/vb/f", 1, 64, WriteMode::Smarth, false)
            .unwrap();
        assert_ne!(fa, fb, "shards draw from one id space");
    }

    #[test]
    fn listing_root() {
        let (ns, _) = ns_with_file();
        let entries = ns.list("/").unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].is_dir);
        assert_eq!(entries[0].path, "/data");
    }

    #[test]
    fn resolve_file_rejects_directories() {
        let (ns, _) = ns_with_file();
        assert!(ns.resolve_file("/data/file.bin").is_ok());
        assert!(matches!(
            ns.resolve_file("/data"),
            Err(DfsError::IsADirectory(_))
        ));
        assert!(matches!(
            ns.resolve_file("/ghost"),
            Err(DfsError::NotFound(_))
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use smarth_core::ids::GenStamp;

    fn path_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec("[a-z]{1,6}", 1..4)
            .prop_map(|parts| format!("/{}", parts.join("/")))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Create → stat → delete is consistent for arbitrary path sets:
        /// everything created is visible with the right metadata, and
        /// after deleting everything no file remains.
        #[test]
        fn create_stat_delete_consistency(paths in proptest::collection::btree_set(path_strategy(), 1..12)) {
            let mut ns = FsNamespace::new();
            let client = ClientId(1);
            let mut created = Vec::new();
            for p in &paths {
                // Some paths may collide with directories created by
                // deeper paths; skip those — the error taxonomy is
                // exercised by the unit tests.
                if let Ok(id) = ns.create_file(client, p, 3, 64, WriteMode::Smarth, false) {
                    ns.append_block(client, id, ExtendedBlock::new(BlockId(id.raw()), GenStamp::INITIAL, 17)).unwrap();
                    ns.complete_file(client, id, None).unwrap();
                    created.push(p.clone());
                }
            }
            for p in &created {
                let info = ns.get_file_info(p).expect("created file must stat");
                prop_assert!(!info.is_dir);
                prop_assert!(info.complete);
                prop_assert_eq!(info.len, 17);
            }
            for p in &created {
                prop_assert!(ns.delete_file(p).unwrap().is_some(), "{} must delete", p);
            }
            for p in &created {
                prop_assert!(ns.get_file_info(p).is_none(), "{} must be gone", p);
            }
        }

        /// Listings always cover exactly the direct children.
        #[test]
        fn listing_matches_creations(names in proptest::collection::btree_set("[a-z]{1,8}", 1..10)) {
            let mut ns = FsNamespace::new();
            let client = ClientId(1);
            for n in &names {
                ns.create_file(client, &format!("/dir/{n}"), 1, 1, WriteMode::Hdfs, false).unwrap();
            }
            let listed: Vec<String> = ns.list("/dir").unwrap().into_iter().map(|e| e.path).collect();
            let expected: Vec<String> = names.iter().map(|n| format!("/dir/{n}")).collect();
            prop_assert_eq!(listed, expected, "sorted listing must equal the created set");
        }
    }
}
