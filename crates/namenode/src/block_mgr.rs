//! Block management: id/generation-stamp allocation, replica location
//! tracking and recovery stamps.
//!
//! The namenode allocates `(BlockId, GenStamp)` pairs in `addBlock`,
//! remembers which datanodes were asked to store each block, collects
//! `blockReceived` confirmations, and — during pipeline recovery
//! (Algorithm 3) — issues a bumped generation stamp so replicas written
//! by the failed pipeline can be told apart from recovered ones.

use smarth_core::error::{DfsError, DfsResult};
use smarth_core::ids::{BlockId, DatanodeId, ExtendedBlock, FileId, GenStamp, IdGenerator};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug)]
struct BlockRecord {
    file: FileId,
    gen: GenStamp,
    /// Datanodes chosen at allocation time (the original pipeline).
    expected: Vec<DatanodeId>,
    /// Replicas confirmed via `blockReceived`, with the length and
    /// generation the datanode reported.
    received: HashMap<DatanodeId, ExtendedBlock>,
}

/// A block record in flight between two shards' managers during a
/// cross-shard rename. Opaque so replica state cannot be dropped on the
/// way.
#[derive(Debug)]
pub struct MovedBlock {
    id: BlockId,
    record: BlockRecord,
}

/// Block registry owned by the namenode (one per volume shard; the id
/// generator is shared across shards so block ids stay globally unique
/// and the sequence matches the single-shard namenode's).
#[derive(Debug)]
pub struct BlockManager {
    blocks: HashMap<BlockId, BlockRecord>,
    ids: Arc<IdGenerator>,
}

impl Default for BlockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockManager {
    pub fn new() -> Self {
        Self::with_shared_ids(Arc::new(IdGenerator::starting_at(1)))
    }

    /// Builds a manager drawing block ids from a shared generator (one
    /// generator across every shard of a sharded namenode).
    pub fn with_shared_ids(ids: Arc<IdGenerator>) -> Self {
        Self {
            blocks: HashMap::new(),
            ids,
        }
    }

    /// Allocates a fresh block for `file`, to be stored on `targets`.
    pub fn allocate(&mut self, file: FileId, targets: &[DatanodeId]) -> ExtendedBlock {
        let id = BlockId(self.ids.allocate());
        let gen = GenStamp::INITIAL;
        self.blocks.insert(
            id,
            BlockRecord {
                file,
                gen,
                expected: targets.to_vec(),
                received: HashMap::new(),
            },
        );
        ExtendedBlock::new(id, gen, 0)
    }

    /// Handles a datanode's `blockReceived` notification. Stale
    /// generations are rejected: a replica finished by a pre-recovery
    /// pipeline must not count.
    pub fn block_received(&mut self, dn: DatanodeId, block: ExtendedBlock) -> DfsResult<()> {
        let rec = self
            .blocks
            .get_mut(&block.id)
            .ok_or(DfsError::UnknownBlock(block.id))?;
        if block.gen < rec.gen {
            return Err(DfsError::StaleGeneration {
                block: block.id,
                expected: rec.gen.raw(),
                got: block.gen.raw(),
            });
        }
        rec.received.insert(dn, block);
        Ok(())
    }

    /// Confirmed replica locations of a block (for reads), filtered to
    /// the current generation.
    pub fn locations(&self, block: BlockId) -> Vec<DatanodeId> {
        match self.blocks.get(&block) {
            Some(rec) => {
                let mut v: Vec<DatanodeId> = rec
                    .received
                    .iter()
                    .filter(|(_, b)| b.gen == rec.gen)
                    .map(|(dn, _)| *dn)
                    .collect();
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        }
    }

    /// Number of confirmed current-generation replicas.
    pub fn replica_count(&self, block: BlockId) -> usize {
        self.locations(block).len()
    }

    /// The pipeline chosen at allocation time.
    pub fn expected_targets(&self, block: BlockId) -> DfsResult<Vec<DatanodeId>> {
        self.blocks
            .get(&block)
            .map(|r| r.expected.clone())
            .ok_or(DfsError::UnknownBlock(block))
    }

    /// Replaces the expected pipeline after recovery rebuilt it.
    pub fn set_expected_targets(
        &mut self,
        block: BlockId,
        targets: &[DatanodeId],
    ) -> DfsResult<()> {
        let rec = self
            .blocks
            .get_mut(&block)
            .ok_or(DfsError::UnknownBlock(block))?;
        rec.expected = targets.to_vec();
        Ok(())
    }

    /// Algorithm 3 support: bumps the block's generation stamp and
    /// returns the new one. Replicas reported under older stamps stop
    /// counting as valid.
    pub fn begin_recovery(&mut self, block: BlockId) -> DfsResult<GenStamp> {
        let rec = self
            .blocks
            .get_mut(&block)
            .ok_or(DfsError::UnknownBlock(block))?;
        rec.gen = rec.gen.next();
        Ok(rec.gen)
    }

    /// Current generation stamp of a block.
    pub fn generation(&self, block: BlockId) -> DfsResult<GenStamp> {
        self.blocks
            .get(&block)
            .map(|r| r.gen)
            .ok_or(DfsError::UnknownBlock(block))
    }

    /// File owning a block.
    pub fn file_of(&self, block: BlockId) -> DfsResult<FileId> {
        self.blocks
            .get(&block)
            .map(|r| r.file)
            .ok_or(DfsError::UnknownBlock(block))
    }

    /// Drops a reader-reported corrupt replica so it stops appearing in
    /// [`Self::locations`]. Returns `true` when the replica was actually
    /// recorded (a duplicate or stale report is a no-op).
    pub fn remove_replica(&mut self, block: BlockId, dn: DatanodeId) -> bool {
        self.blocks
            .get_mut(&block)
            .is_some_and(|rec| rec.received.remove(&dn).is_some())
    }

    /// Drops a block entirely (file deleted / block abandoned).
    pub fn retire(&mut self, block: BlockId) {
        self.blocks.remove(&block);
    }

    /// Removes a block's record for re-insertion into another shard's
    /// manager via [`BlockManager::adopt`] — the block half of a
    /// cross-shard rename (blocks follow their file's shard).
    pub fn evict(&mut self, block: BlockId) -> Option<MovedBlock> {
        self.blocks
            .remove(&block)
            .map(|record| MovedBlock { id: block, record })
    }

    /// Re-inserts a record evicted from another shard's manager,
    /// retargeting it at `file` (the same inode id in practice — renames
    /// keep the id — but taking it explicitly keeps the invariant
    /// local).
    pub fn adopt(&mut self, moved: MovedBlock, file: FileId) {
        let MovedBlock { id, mut record } = moved;
        record.file = file;
        self.blocks.insert(id, record);
    }

    /// Forgets a dead datanode's replicas.
    pub fn forget_datanode(&mut self, dn: DatanodeId) {
        for rec in self.blocks.values_mut() {
            rec.received.remove(&dn);
        }
    }

    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(i: u32) -> DatanodeId {
        DatanodeId(i)
    }

    #[test]
    fn allocate_assigns_unique_ids_and_initial_gen() {
        let mut bm = BlockManager::new();
        let b1 = bm.allocate(FileId(1), &[dn(0), dn(1)]);
        let b2 = bm.allocate(FileId(1), &[dn(2)]);
        assert_ne!(b1.id, b2.id);
        assert_eq!(b1.gen, GenStamp::INITIAL);
        assert_eq!(b1.len, 0);
        assert_eq!(bm.expected_targets(b1.id).unwrap(), vec![dn(0), dn(1)]);
        assert_eq!(bm.file_of(b2.id).unwrap(), FileId(1));
        assert_eq!(bm.block_count(), 2);
    }

    #[test]
    fn block_received_tracks_replicas() {
        let mut bm = BlockManager::new();
        let b = bm.allocate(FileId(1), &[dn(0), dn(1), dn(2)]);
        assert_eq!(bm.replica_count(b.id), 0);
        let finished = ExtendedBlock::new(b.id, b.gen, 1024);
        bm.block_received(dn(0), finished).unwrap();
        bm.block_received(dn(2), finished).unwrap();
        assert_eq!(bm.locations(b.id), vec![dn(0), dn(2)]);
        // Duplicate report is idempotent.
        bm.block_received(dn(0), finished).unwrap();
        assert_eq!(bm.replica_count(b.id), 2);
    }

    #[test]
    fn unknown_block_reports_fail() {
        let mut bm = BlockManager::new();
        let err = bm
            .block_received(dn(0), ExtendedBlock::new(BlockId(7), GenStamp(1), 1))
            .unwrap_err();
        assert!(matches!(err, DfsError::UnknownBlock(BlockId(7))));
        assert!(bm.expected_targets(BlockId(7)).is_err());
        assert!(bm.generation(BlockId(7)).is_err());
    }

    #[test]
    fn recovery_bumps_generation_and_invalidates_stale_replicas() {
        let mut bm = BlockManager::new();
        let b = bm.allocate(FileId(1), &[dn(0), dn(1), dn(2)]);
        bm.block_received(dn(0), ExtendedBlock::new(b.id, b.gen, 512))
            .unwrap();

        let new_gen = bm.begin_recovery(b.id).unwrap();
        assert_eq!(new_gen, b.gen.next());
        assert_eq!(bm.generation(b.id).unwrap(), new_gen);
        // The old replica no longer counts.
        assert_eq!(bm.replica_count(b.id), 0);
        // A report under the old stamp is now stale.
        let stale = bm
            .block_received(dn(1), ExtendedBlock::new(b.id, b.gen, 512))
            .unwrap_err();
        assert!(matches!(stale, DfsError::StaleGeneration { .. }));
        // A report under the new stamp counts.
        bm.block_received(dn(1), ExtendedBlock::new(b.id, new_gen, 512))
            .unwrap();
        assert_eq!(bm.locations(b.id), vec![dn(1)]);
    }

    #[test]
    fn set_expected_targets_after_recovery() {
        let mut bm = BlockManager::new();
        let b = bm.allocate(FileId(1), &[dn(0), dn(1), dn(2)]);
        bm.set_expected_targets(b.id, &[dn(0), dn(3), dn(2)]).unwrap();
        assert_eq!(bm.expected_targets(b.id).unwrap(), vec![dn(0), dn(3), dn(2)]);
    }

    #[test]
    fn forget_datanode_drops_its_replicas() {
        let mut bm = BlockManager::new();
        let b = bm.allocate(FileId(1), &[dn(0), dn(1)]);
        let fin = ExtendedBlock::new(b.id, b.gen, 10);
        bm.block_received(dn(0), fin).unwrap();
        bm.block_received(dn(1), fin).unwrap();
        bm.forget_datanode(dn(0));
        assert_eq!(bm.locations(b.id), vec![dn(1)]);
    }

    #[test]
    fn remove_replica_drops_only_the_reported_copy() {
        let mut bm = BlockManager::new();
        let b = bm.allocate(FileId(1), &[dn(0), dn(1), dn(2)]);
        let fin = ExtendedBlock::new(b.id, b.gen, 10);
        bm.block_received(dn(0), fin).unwrap();
        bm.block_received(dn(1), fin).unwrap();
        assert!(bm.remove_replica(b.id, dn(0)));
        assert_eq!(bm.locations(b.id), vec![dn(1)]);
        // Reporting the same (or an unknown) replica again is a no-op.
        assert!(!bm.remove_replica(b.id, dn(0)));
        assert!(!bm.remove_replica(b.id, dn(2)));
        assert!(!bm.remove_replica(BlockId(999), dn(1)));
        // A fresh blockReceived re-admits the datanode (re-replication).
        bm.block_received(dn(0), fin).unwrap();
        assert_eq!(bm.locations(b.id), vec![dn(0), dn(1)]);
    }

    #[test]
    fn evict_adopt_moves_a_record_with_replica_state() {
        let ids = Arc::new(IdGenerator::starting_at(1));
        let mut a = BlockManager::with_shared_ids(ids.clone());
        let mut b = BlockManager::with_shared_ids(ids);
        let blk = a.allocate(FileId(7), &[dn(0), dn(1)]);
        a.block_received(dn(0), ExtendedBlock::new(blk.id, blk.gen, 64))
            .unwrap();

        let moved = a.evict(blk.id).expect("record exists");
        assert_eq!(a.block_count(), 0);
        b.adopt(moved, FileId(7));
        assert_eq!(b.block_count(), 1);
        assert_eq!(b.file_of(blk.id).unwrap(), FileId(7));
        assert_eq!(b.locations(blk.id), vec![dn(0)]);
        assert_eq!(b.expected_targets(blk.id).unwrap(), vec![dn(0), dn(1)]);

        // Shared ids: the next allocation in either manager is unique.
        let b2 = b.allocate(FileId(8), &[dn(2)]);
        assert_ne!(b2.id, blk.id);
        assert!(a.evict(BlockId(999)).is_none());
    }

    #[test]
    fn retire_removes_block() {
        let mut bm = BlockManager::new();
        let b = bm.allocate(FileId(1), &[dn(0)]);
        bm.retire(b.id);
        assert_eq!(bm.block_count(), 0);
        assert!(bm.generation(b.id).is_err());
    }
}
