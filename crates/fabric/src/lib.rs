//! # smarth-fabric
//!
//! In-memory network fabric for running the real DFS node implementations
//! under emulated EC2-like conditions: token-bucket NIC shaping per host,
//! cross-rack and per-host throttles (the paper's `tc` setup), per-chunk
//! propagation latency, bounded socket buffers with true backpressure,
//! and fault injection (host kill, link cut).
//!
//! The fabric is the real-time execution engine; the deterministic
//! counterpart at full paper scale lives in `smarth-sim`.

mod bucket;
mod channel;
mod fabric;

pub use bucket::{BucketClosed, TokenBucket};
pub use channel::ByteChannel;
pub use fabric::{Fabric, FabricConfig, FabricStream, Listener, ReadHalf, WriteHalf};

#[cfg(test)]
mod tests {
    use super::*;
    use smarth_core::units::Bandwidth;
    use smarth_core::wire::{read_frame, write_frame, FrameIo};
    use std::time::{Duration, Instant};

    fn small_fabric() -> Fabric {
        let f = Fabric::new(FabricConfig {
            latency: Duration::ZERO,
            socket_buffer: 64 * 1024,
            chunk_size: 4096,
        });
        f.add_host("a", "rack-a", Bandwidth::unlimited());
        f.add_host("b", "rack-b", Bandwidth::unlimited());
        f.add_host("c", "rack-a", Bandwidth::unlimited());
        f
    }

    #[test]
    fn connect_and_exchange_frames() {
        let f = small_fabric();
        let listener = f.listen("b:50010").unwrap();
        let server = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let req = read_frame(&mut s).unwrap();
            assert_eq!(&req[..], b"ping");
            write_frame(&mut s, &bytes::Bytes::from_static(b"pong")).unwrap();
        });
        let mut c = f.connect("a", "b:50010").unwrap();
        assert_eq!(c.local_host(), "a");
        assert_eq!(c.peer_host(), "b");
        write_frame(&mut c, &bytes::Bytes::from_static(b"ping")).unwrap();
        let reply = read_frame(&mut c).unwrap();
        assert_eq!(&reply[..], b"pong");
        server.join().unwrap();
    }

    #[test]
    fn connect_to_missing_listener_fails() {
        let f = small_fabric();
        assert!(f.connect("a", "b:9999").is_err());
        assert!(f.connect("a", "nowhere:1").is_err());
    }

    #[test]
    fn nic_throttle_limits_throughput() {
        let f = Fabric::new(FabricConfig {
            latency: Duration::ZERO,
            socket_buffer: 256 * 1024,
            chunk_size: 8192,
        });
        // 8 MiB/s NICs: 1 MiB should take ≈ 0.125 s.
        f.add_host("src", "r", Bandwidth::mib_per_sec(8.0));
        f.add_host("dst", "r", Bandwidth::mib_per_sec(8.0));
        let listener = f.listen("dst:1").unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut buf = vec![0u8; 1 << 20];
            s.read_exact(&mut buf).unwrap();
        });
        let mut c = f.connect("src", "dst:1").unwrap();
        let start = Instant::now();
        c.write_all(&vec![0u8; 1 << 20]).unwrap();
        reader.join().unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert!(secs > 0.07, "throttle ignored: {secs}s");
        assert!(secs < 0.6, "throttle far too strict: {secs}s");
    }

    #[test]
    fn cross_rack_throttle_only_hits_cross_rack_flows() {
        let f = Fabric::new(FabricConfig {
            latency: Duration::ZERO,
            socket_buffer: 256 * 1024,
            chunk_size: 8192,
        });
        f.add_host("a1", "rack-a", Bandwidth::unlimited());
        f.add_host("a2", "rack-a", Bandwidth::unlimited());
        f.add_host("b1", "rack-b", Bandwidth::unlimited());
        f.set_cross_rack_throttle(Some(Bandwidth::mib_per_sec(8.0)));

        let run = |from: &str, addr: &str| -> f64 {
            let listener = f.listen(addr).unwrap();
            let reader = std::thread::spawn(move || {
                let mut s = listener.accept().unwrap();
                let mut buf = vec![0u8; 512 * 1024];
                s.read_exact(&mut buf).unwrap();
            });
            let mut c = f.connect(from, addr).unwrap();
            let start = Instant::now();
            c.write_all(&vec![0u8; 512 * 1024]).unwrap();
            reader.join().unwrap();
            start.elapsed().as_secs_f64()
        };

        let same_rack = run("a1", "a2:1");
        let cross_rack = run("a1", "b1:1");
        assert!(
            same_rack < 0.05,
            "same-rack flow should be instant: {same_rack}s"
        );
        // 512 KiB at 8 MiB/s ≈ 62 ms (minus burst).
        assert!(
            cross_rack > 0.025,
            "cross-rack throttle not applied: {cross_rack}s"
        );
    }

    #[test]
    fn throttle_host_tightens_and_lifts() {
        let f = Fabric::new(FabricConfig {
            latency: Duration::ZERO,
            socket_buffer: 256 * 1024,
            chunk_size: 8192,
        });
        f.add_host("x", "r", Bandwidth::mib_per_sec(1000.0));
        f.add_host("y", "r", Bandwidth::mib_per_sec(1000.0));
        f.throttle_host("x", Some(Bandwidth::mib_per_sec(8.0))).unwrap();

        let listener = f.listen("y:1").unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut buf = vec![0u8; 512 * 1024];
            s.read_exact(&mut buf).unwrap();
            let mut buf2 = vec![0u8; 512 * 1024];
            s.read_exact(&mut buf2).unwrap();
        });
        let mut c = f.connect("x", "y:1").unwrap();
        let start = Instant::now();
        c.write_all(&vec![0u8; 512 * 1024]).unwrap();
        let throttled = start.elapsed().as_secs_f64();
        assert!(throttled > 0.025, "host throttle not applied: {throttled}");

        f.throttle_host("x", None).unwrap();
        let start = Instant::now();
        c.write_all(&vec![0u8; 512 * 1024]).unwrap();
        let unthrottled = start.elapsed().as_secs_f64();
        assert!(
            unthrottled < throttled,
            "lifting throttle should speed up: {unthrottled} vs {throttled}"
        );
        reader.join().unwrap();
        assert!(f.throttle_host("ghost", None).is_err());
    }

    #[test]
    fn kill_host_breaks_streams_and_blocks_new_connects() {
        let f = small_fabric();
        let listener = f.listen("b:2").unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut buf = [0u8; 16];
            s.read_exact(&mut buf)
        });
        let mut c = f.connect("a", "b:2").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        f.kill_host("b");
        assert!(reader.join().unwrap().is_err(), "reader on killed host");
        assert!(c.write_all(b"0123456789abcdef").is_err() || c.is_broken());
        assert!(f.connect("a", "b:2").is_err(), "connect to dead host");
        assert!(!f.is_alive("b"));
        f.revive_host("b");
        assert!(f.is_alive("b"));
    }

    #[test]
    fn cut_link_breaks_only_that_pair() {
        let f = small_fabric();
        let lb = f.listen("b:3").unwrap();
        let lc = f.listen("c:3").unwrap();
        let read_task = |l: Listener| {
            std::thread::spawn(move || {
                let mut s = l.accept().unwrap();
                let mut buf = [0u8; 4];
                s.read_exact(&mut buf)
            })
        };
        let rb = read_task(lb);
        let rc = read_task(lc);
        let to_b = f.connect("a", "b:3").unwrap();
        let mut to_c = f.connect("a", "c:3").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        f.cut_link("a", "b");
        assert!(rb.join().unwrap().is_err(), "a<->b must be broken");
        to_c.write_all(b"fine").unwrap();
        assert!(rc.join().unwrap().is_ok(), "a<->c must survive");
        assert!(to_b.is_broken());
        assert!(!to_c.is_broken());
    }

    #[test]
    fn shutdown_unblocks_accept() {
        let f = small_fabric();
        let listener = f.listen("a:9").unwrap();
        let acceptor = std::thread::spawn(move || listener.accept());
        std::thread::sleep(Duration::from_millis(20));
        f.shutdown();
        assert!(acceptor.join().unwrap().is_err());
        assert!(f.connect("a", "b:1").is_err());
    }

    #[test]
    fn accept_timeout_returns_none_when_idle() {
        let f = small_fabric();
        let listener = f.listen("a:8").unwrap();
        let got = listener.accept_timeout(Duration::from_millis(30)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn concurrent_flows_share_host_nic() {
        // Two flows out of one 16 MiB/s host: combined 1 MiB ≈ 62 ms+.
        let f = Fabric::new(FabricConfig {
            latency: Duration::ZERO,
            socket_buffer: 256 * 1024,
            chunk_size: 8192,
        });
        f.add_host("hub", "r", Bandwidth::mib_per_sec(16.0));
        f.add_host("p", "r", Bandwidth::unlimited());
        f.add_host("q", "r", Bandwidth::unlimited());
        let lp = f.listen("p:1").unwrap();
        let lq = f.listen("q:1").unwrap();
        let drain = |l: Listener| {
            std::thread::spawn(move || {
                let mut s = l.accept().unwrap();
                let mut buf = vec![0u8; 512 * 1024];
                s.read_exact(&mut buf).unwrap();
            })
        };
        let dp = drain(lp);
        let dq = drain(lq);
        let start = Instant::now();
        let writers: Vec<_> = ["p:1", "q:1"]
            .into_iter()
            .map(|addr| {
                let mut c = f.connect("hub", addr).unwrap();
                std::thread::spawn(move || c.write_all(&vec![0u8; 512 * 1024]).unwrap())
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        dp.join().unwrap();
        dq.join().unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert!(secs > 0.035, "NIC sharing not enforced: {secs}s");
    }
}
