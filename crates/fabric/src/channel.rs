//! Bounded, latency-aware byte channel — one direction of an emulated
//! connection.
//!
//! The channel holds at most `capacity` buffered bytes (the socket
//! buffer). Writers block when it is full, which is how backpressure
//! propagates hop-by-hop through a pipeline exactly like TCP flow
//! control: a slow cross-rack hop eventually stalls the client's writes
//! into the first datanode once every buffer in between has filled.
//!
//! Each chunk carries a `ready_at` timestamp (`enqueue time + latency`);
//! readers do not see bytes before that instant, modelling one-way
//! propagation delay.

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use smarth_core::error::{DfsError, DfsResult};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct ChannelState {
    queue: VecDeque<(Instant, Bytes)>,
    /// Total bytes across `queue` plus the partially consumed `front`.
    buffered: usize,
    /// Partially consumed head chunk.
    front: Option<Bytes>,
    write_closed: bool,
    read_closed: bool,
    /// Set by host kill / link cut: all operations fail with this.
    broken: Option<String>,
}

/// One direction of a fabric connection.
#[derive(Debug)]
pub struct ByteChannel {
    state: Mutex<ChannelState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
    latency: Duration,
}

impl ByteChannel {
    pub fn new(capacity: usize, latency: Duration) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        Self {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                buffered: 0,
                front: None,
                write_closed: false,
                read_closed: false,
                broken: None,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
            latency,
        }
    }

    /// Enqueues a chunk, blocking while the buffer is full. The caller
    /// has already paid the bandwidth cost via the token buckets.
    pub fn push(&self, chunk: Bytes) -> DfsResult<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let mut st = self.state.lock();
        loop {
            if let Some(reason) = &st.broken {
                return Err(DfsError::connection_lost(reason.clone()));
            }
            if st.read_closed {
                return Err(DfsError::connection_lost("peer closed read side"));
            }
            if st.write_closed {
                return Err(DfsError::connection_lost("write side already closed"));
            }
            // Always admit at least one chunk so a chunk larger than the
            // buffer cannot deadlock; otherwise respect the capacity.
            if st.buffered == 0 || st.buffered + chunk.len() <= self.capacity {
                let ready = Instant::now() + self.latency;
                st.buffered += chunk.len();
                st.queue.push_back((ready, chunk));
                self.readable.notify_all();
                return Ok(());
            }
            self.writable.wait(&mut st);
        }
    }

    /// Fills `buf` completely, blocking for data and latency. Errors on
    /// EOF-before-filled or a broken channel.
    pub fn read_exact(&self, buf: &mut [u8]) -> DfsResult<()> {
        let mut filled = 0;
        let mut st = self.state.lock();
        while filled < buf.len() {
            if let Some(reason) = &st.broken {
                return Err(DfsError::connection_lost(reason.clone()));
            }
            // Take from the partially consumed front chunk first.
            if let Some(front) = st.front.take() {
                let n = front.len().min(buf.len() - filled);
                buf[filled..filled + n].copy_from_slice(&front[..n]);
                filled += n;
                st.buffered -= n;
                if n < front.len() {
                    st.front = Some(front.slice(n..));
                }
                self.writable.notify_all();
                continue;
            }
            match st.queue.front() {
                Some((ready, _)) => {
                    let now = Instant::now();
                    if *ready <= now {
                        let (_, chunk) = st.queue.pop_front().expect("front checked");
                        st.front = Some(chunk);
                    } else {
                        let wait = *ready - now;
                        self.readable.wait_for(&mut st, wait);
                    }
                }
                None => {
                    if st.write_closed {
                        return Err(DfsError::connection_lost(format!(
                            "eof after {filled} of {} bytes",
                            buf.len()
                        )));
                    }
                    self.readable.wait(&mut st);
                }
            }
        }
        Ok(())
    }

    /// Like [`read_exact`](Self::read_exact), but gives up with
    /// [`DfsError::Timeout`] once `deadline` passes without the buffer
    /// filling. This is what lets a reader abandon a stalled datanode
    /// (throttled to a trickle, not dead — the channel never breaks) and
    /// fail over to another replica.
    pub fn read_exact_deadline(&self, buf: &mut [u8], deadline: Instant) -> DfsResult<()> {
        let mut filled = 0;
        let mut st = self.state.lock();
        while filled < buf.len() {
            if let Some(reason) = &st.broken {
                return Err(DfsError::connection_lost(reason.clone()));
            }
            if let Some(front) = st.front.take() {
                let n = front.len().min(buf.len() - filled);
                buf[filled..filled + n].copy_from_slice(&front[..n]);
                filled += n;
                st.buffered -= n;
                if n < front.len() {
                    st.front = Some(front.slice(n..));
                }
                self.writable.notify_all();
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(DfsError::Timeout(format!(
                    "read deadline after {filled} of {} bytes",
                    buf.len()
                )));
            }
            match st.queue.front() {
                Some((ready, _)) => {
                    if *ready <= now {
                        let (_, chunk) = st.queue.pop_front().expect("front checked");
                        st.front = Some(chunk);
                    } else {
                        let wait = (*ready - now).min(deadline - now);
                        self.readable.wait_for(&mut st, wait);
                    }
                }
                None => {
                    if st.write_closed {
                        return Err(DfsError::connection_lost(format!(
                            "eof after {filled} of {} bytes",
                            buf.len()
                        )));
                    }
                    self.readable.wait_for(&mut st, deadline - now);
                }
            }
        }
        Ok(())
    }

    /// True when a `read_exact` would find at least one byte without
    /// blocking on data arrival (latency may still apply).
    pub fn has_pending(&self) -> bool {
        let st = self.state.lock();
        st.front.is_some() || !st.queue.is_empty()
    }

    pub fn buffered_bytes(&self) -> usize {
        self.state.lock().buffered
    }

    /// Graceful close of the writing side; readers drain what is queued
    /// and then see EOF.
    pub fn close_write(&self) {
        let mut st = self.state.lock();
        st.write_closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Close of the reading side; subsequent writes fail.
    pub fn close_read(&self) {
        let mut st = self.state.lock();
        st.read_closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Hard break (host killed, link cut): every pending and future
    /// operation on either side fails immediately.
    pub fn break_with(&self, reason: &str) {
        let mut st = self.state.lock();
        st.broken = Some(reason.to_string());
        st.queue.clear();
        st.front = None;
        st.buffered = 0;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    pub fn is_broken(&self) -> bool {
        self.state.lock().broken.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn chan(cap: usize) -> Arc<ByteChannel> {
        Arc::new(ByteChannel::new(cap, Duration::ZERO))
    }

    #[test]
    fn roundtrip_bytes() {
        let c = chan(1024);
        c.push(Bytes::from_static(b"hello ")).unwrap();
        c.push(Bytes::from_static(b"world")).unwrap();
        let mut buf = [0u8; 11];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn partial_chunk_consumption() {
        let c = chan(1024);
        c.push(Bytes::from_static(b"abcdef")).unwrap();
        let mut one = [0u8; 2];
        c.read_exact(&mut one).unwrap();
        assert_eq!(&one, b"ab");
        let mut rest = [0u8; 4];
        c.read_exact(&mut rest).unwrap();
        assert_eq!(&rest, b"cdef");
        assert_eq!(c.buffered_bytes(), 0);
    }

    #[test]
    fn backpressure_blocks_writer_until_reader_drains() {
        let c = chan(100);
        c.push(Bytes::from(vec![0u8; 80])).unwrap();
        // Next push would exceed capacity → writer must block.
        let c2 = Arc::clone(&c);
        let writer = std::thread::spawn(move || {
            let start = Instant::now();
            c2.push(Bytes::from(vec![1u8; 80])).unwrap();
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(50));
        let mut buf = vec![0u8; 80];
        c.read_exact(&mut buf).unwrap();
        let blocked_for = writer.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(40),
            "writer should have blocked, blocked {blocked_for:?}"
        );
    }

    #[test]
    fn oversized_single_chunk_is_admitted_when_empty() {
        let c = chan(16);
        // A chunk larger than capacity must not deadlock.
        c.push(Bytes::from(vec![7u8; 64])).unwrap();
        let mut buf = vec![0u8; 64];
        c.read_exact(&mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn latency_delays_delivery() {
        let c = Arc::new(ByteChannel::new(1024, Duration::from_millis(60)));
        let start = Instant::now();
        c.push(Bytes::from_static(b"x")).unwrap();
        let mut buf = [0u8; 1];
        c.read_exact(&mut buf).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(50),
            "read returned before latency elapsed: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn deadline_read_times_out_on_an_idle_channel() {
        let c = chan(1024);
        c.push(Bytes::from_static(b"ab")).unwrap();
        let mut buf = [0u8; 8];
        let start = Instant::now();
        let err = c
            .read_exact_deadline(&mut buf, start + Duration::from_millis(60))
            .unwrap_err();
        assert!(matches!(err, DfsError::Timeout(_)), "got {err:?}");
        assert!(start.elapsed() >= Duration::from_millis(50));
        // The two consumed bytes are gone, but fresh data still reads.
        c.push(Bytes::from_static(b"cdefgh")).unwrap();
        let mut rest = [0u8; 6];
        c.read_exact(&mut rest).unwrap();
        assert_eq!(&rest, b"cdefgh");
    }

    #[test]
    fn deadline_read_succeeds_when_data_arrives_in_time() {
        let c = chan(1024);
        let c2 = Arc::clone(&c);
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.push(Bytes::from_static(b"late")).unwrap();
        });
        let mut buf = [0u8; 4];
        c.read_exact_deadline(&mut buf, Instant::now() + Duration::from_secs(2))
            .unwrap();
        assert_eq!(&buf, b"late");
        writer.join().unwrap();
    }

    #[test]
    fn eof_mid_read_is_an_error() {
        let c = chan(1024);
        c.push(Bytes::from_static(b"ab")).unwrap();
        c.close_write();
        let mut buf = [0u8; 4];
        let err = c.read_exact(&mut buf).unwrap_err();
        assert!(matches!(err, DfsError::ConnectionLost(_)));
    }

    #[test]
    fn graceful_close_lets_reader_drain() {
        let c = chan(1024);
        c.push(Bytes::from_static(b"tail")).unwrap();
        c.close_write();
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tail");
    }

    #[test]
    fn write_after_reader_close_fails() {
        let c = chan(1024);
        c.close_read();
        assert!(c.push(Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn break_fails_blocked_writer() {
        // Full channel, no reader: the second push must block, then fail
        // once the channel breaks.
        let c = chan(16);
        c.push(Bytes::from(vec![0u8; 16])).unwrap();
        let c2 = Arc::clone(&c);
        let blocked_writer = std::thread::spawn(move || c2.push(Bytes::from(vec![0u8; 16])));
        std::thread::sleep(Duration::from_millis(30));
        c.break_with("host dn3 killed");
        assert!(blocked_writer.join().unwrap().is_err());
        assert!(c.is_broken());
        // Future operations fail too.
        assert!(c.push(Bytes::from_static(b"y")).is_err());
    }

    #[test]
    fn break_fails_blocked_reader() {
        // Empty channel: the read must block, then fail on break.
        let c = chan(16);
        let c2 = Arc::clone(&c);
        let blocked_reader = std::thread::spawn(move || {
            let mut buf = [0u8; 64];
            c2.read_exact(&mut buf)
        });
        std::thread::sleep(Duration::from_millis(30));
        c.break_with("host dn3 killed");
        assert!(blocked_reader.join().unwrap().is_err());
    }

    #[test]
    fn concurrent_producer_consumer_transfers_everything() {
        let c = chan(4096);
        let total = 1 << 20;
        let producer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                let mut i = 0u8;
                while sent < total {
                    let n = 1500.min((total - sent) as usize);
                    c.push(Bytes::from(vec![i; n])).unwrap();
                    sent += n as u64;
                    i = i.wrapping_add(1);
                }
                c.close_write();
            })
        };
        let mut received = 0u64;
        let mut buf = vec![0u8; 977]; // deliberately unaligned
        while received < total {
            let n = buf.len().min((total - received) as usize);
            c.read_exact(&mut buf[..n]).unwrap();
            received += n as u64;
        }
        producer.join().unwrap();
        assert_eq!(received, total);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any sequence of chunk writes is read back as the identical
        /// byte stream, regardless of how reads are sized.
        #[test]
        fn stream_preserves_bytes(
            chunks in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..257), 1..32),
            read_size in 1usize..512,
        ) {
            let chan = Arc::new(ByteChannel::new(512, Duration::ZERO));
            let expected: Vec<u8> = chunks.iter().flatten().copied().collect();
            let writer = {
                let chan = Arc::clone(&chan);
                std::thread::spawn(move || {
                    for c in chunks {
                        chan.push(Bytes::from(c)).unwrap();
                    }
                    chan.close_write();
                })
            };
            let mut got = Vec::with_capacity(expected.len());
            let mut buf = vec![0u8; read_size];
            while got.len() < expected.len() {
                let n = read_size.min(expected.len() - got.len());
                chan.read_exact(&mut buf[..n]).unwrap();
                got.extend_from_slice(&buf[..n]);
            }
            writer.join().unwrap();
            prop_assert_eq!(got, expected);
        }

        /// Buffered byte accounting never exceeds capacity by more than
        /// one admitted oversized chunk.
        #[test]
        fn buffer_accounting_consistent(
            sizes in proptest::collection::vec(1usize..64, 1..20),
        ) {
            let chan = ByteChannel::new(4096, Duration::ZERO);
            let mut total = 0usize;
            for s in &sizes {
                chan.push(Bytes::from(vec![0u8; *s])).unwrap();
                total += s;
            }
            prop_assert_eq!(chan.buffered_bytes(), total);
            let mut buf = vec![0u8; total];
            chan.read_exact(&mut buf).unwrap();
            prop_assert_eq!(chan.buffered_bytes(), 0);
        }
    }
}
