//! Token-bucket rate limiter — the fabric's model of `tc` traffic shaping.
//!
//! Every host NIC direction and every throttled host pair owns one bucket.
//! All flows through the same bucket contend for its tokens, which yields
//! the approximate max-min fair sharing a real shaped interface shows when
//! several TCP streams cross it.
//!
//! Buckets are refilled lazily from a monotonic clock on each acquire, so
//! there is no background timer thread. `acquire` blocks the calling
//! stream until enough tokens accumulate (or the bucket is closed during
//! fabric shutdown / host kill).

use parking_lot::{Condvar, Mutex};
use smarth_core::units::Bandwidth;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct BucketState {
    /// Current token count, in bytes. May go fractional due to refill.
    tokens: f64,
    /// Bytes per second; `f64::INFINITY` disables limiting.
    rate: f64,
    /// Burst ceiling in bytes.
    capacity: f64,
    last_refill: Instant,
    closed: bool,
}

/// A shared, thread-safe token bucket.
#[derive(Debug)]
pub struct TokenBucket {
    state: Mutex<BucketState>,
    available: Condvar,
    /// Number of times an `acquire` had to sleep waiting for tokens.
    /// Observable so tests can assert the uncontended path never waits.
    waits: AtomicU64,
}

/// Error returned when a bucket is closed while a caller waits on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketClosed;

impl TokenBucket {
    /// Creates a bucket for the given bandwidth. The burst capacity is
    /// ~20 ms of line rate, floored at 64 KiB so single packets never
    /// exceed the burst.
    pub fn new(bandwidth: Bandwidth) -> Self {
        let rate = bandwidth.as_bytes_per_sec();
        let capacity = if rate.is_finite() {
            (rate * 0.02).max(64.0 * 1024.0)
        } else {
            f64::INFINITY
        };
        Self {
            state: Mutex::new(BucketState {
                tokens: capacity.min(1e9),
                rate,
                capacity,
                last_refill: Instant::now(),
                closed: false,
            }),
            available: Condvar::new(),
            waits: AtomicU64::new(0),
        }
    }

    /// An unlimited bucket (no shaping).
    pub fn unlimited() -> Self {
        Self::new(Bandwidth::unlimited())
    }

    fn refill(state: &mut BucketState, now: Instant) {
        if !state.rate.is_finite() {
            return;
        }
        let dt = now.duration_since(state.last_refill).as_secs_f64();
        state.last_refill = now;
        state.tokens = (state.tokens + dt * state.rate).min(state.capacity);
    }

    /// Blocks until `n` bytes of tokens are available, then consumes
    /// them. Returns `Err(BucketClosed)` if the bucket is closed before
    /// the tokens could be granted.
    ///
    /// When the bucket already holds enough tokens the grant happens in
    /// one shot — a single refill and subtraction under the lock, with
    /// no sleep bookkeeping touched.
    pub fn acquire(&self, n: usize) -> Result<(), BucketClosed> {
        let mut st = self.state.lock();
        // Uncontended fast path: grant in one shot when tokens suffice.
        if st.closed {
            return Err(BucketClosed);
        }
        if !st.rate.is_finite() {
            return Ok(());
        }
        Self::refill(&mut st, Instant::now());
        let need = n as f64;
        if st.tokens >= need {
            st.tokens -= need;
            return Ok(());
        }
        loop {
            // Sleep roughly until the deficit refills; cap the wait so
            // rate changes and close() are noticed promptly.
            let deficit = need - st.tokens;
            let wait = Duration::from_secs_f64((deficit / st.rate).clamp(0.000_05, 0.01));
            self.waits.fetch_add(1, Ordering::Relaxed);
            self.available.wait_for(&mut st, wait);
            if st.closed {
                return Err(BucketClosed);
            }
            if !st.rate.is_finite() {
                return Ok(());
            }
            Self::refill(&mut st, Instant::now());
            if st.tokens >= need {
                st.tokens -= need;
                return Ok(());
            }
        }
    }

    /// How many times any `acquire` on this bucket has slept waiting for
    /// tokens. Stays zero as long as every acquire hits the fast path.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Non-blocking acquire; true when tokens were consumed.
    pub fn try_acquire(&self, n: usize) -> bool {
        let mut st = self.state.lock();
        if st.closed {
            return false;
        }
        if !st.rate.is_finite() {
            return true;
        }
        Self::refill(&mut st, Instant::now());
        if st.tokens >= n as f64 {
            st.tokens -= n as f64;
            true
        } else {
            false
        }
    }

    /// Changes the shaping rate in place; affects all current and future
    /// flows through this bucket (used by `Fabric::throttle_host`).
    pub fn set_rate(&self, bandwidth: Bandwidth) {
        let mut st = self.state.lock();
        Self::refill(&mut st, Instant::now());
        let new_rate = bandwidth.as_bytes_per_sec();
        let tightening = new_rate < st.rate;
        st.rate = new_rate;
        st.capacity = if st.rate.is_finite() {
            (st.rate * 0.02).max(64.0 * 1024.0)
        } else {
            f64::INFINITY
        };
        st.tokens = st.tokens.min(st.capacity);
        if tightening && st.rate.is_finite() {
            // A tc-style throttle bites immediately: drop the burst
            // accumulated at the old rate down to ~20 ms of the new
            // line rate. Without this, the 64 KiB burst floor lets
            // small messages (namenode RPCs, heartbeats) sail through
            // a severe stall for its entire duration.
            st.tokens = st.tokens.min(st.rate * 0.02);
        }
        self.available.notify_all();
    }

    pub fn rate(&self) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.state.lock().rate)
    }

    /// Permanently closes the bucket, failing all waiters — used when a
    /// host is killed or the fabric shuts down.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn unlimited_bucket_never_blocks() {
        let b = TokenBucket::unlimited();
        let start = Instant::now();
        for _ in 0..1000 {
            b.acquire(1 << 20).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn acquire_enforces_rate() {
        // 10 MiB/s; move 1 MiB beyond the burst → ≥ ~0.1 s minus burst.
        let b = TokenBucket::new(Bandwidth::mib_per_sec(10.0));
        // Drain the initial burst first.
        b.acquire((10.0 * 1024.0 * 1024.0 * 0.02) as usize).unwrap();
        let start = Instant::now();
        let total = 1024 * 1024;
        let mut moved = 0;
        while moved < total {
            let chunk = 8192.min(total - moved);
            b.acquire(chunk).unwrap();
            moved += chunk;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let expected = 1.0 / 10.0; // 1 MiB at 10 MiB/s
        assert!(
            elapsed > expected * 0.7,
            "rate not enforced: {elapsed}s for expected {expected}s"
        );
        assert!(elapsed < expected * 2.0, "rate far too slow: {elapsed}s");
    }

    #[test]
    fn concurrent_flows_share_the_rate() {
        let b = Arc::new(TokenBucket::new(Bandwidth::mib_per_sec(20.0)));
        b.acquire((20.0 * 1024.0 * 1024.0 * 0.02) as usize).unwrap();
        let start = Instant::now();
        let per_flow = 512 * 1024;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut moved = 0;
                    while moved < per_flow {
                        let chunk = 8192.min(per_flow - moved);
                        b.acquire(chunk).unwrap();
                        moved += chunk;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 × 512 KiB = 2 MiB at 20 MiB/s ≈ 0.1 s total.
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed > 0.06, "sharing too fast: {elapsed}");
        assert!(elapsed < 0.4, "sharing too slow: {elapsed}");
    }

    #[test]
    fn uncontended_acquire_never_sleeps() {
        // The burst floor guarantees a fresh bucket holds ≥ 64 KiB, so a
        // single 64 KiB acquire must take the one-shot fast path.
        let b = TokenBucket::new(Bandwidth::mib_per_sec(1.0));
        b.acquire(64 * 1024).unwrap();
        assert_eq!(b.waits(), 0, "uncontended acquire slept");

        // And once drained, the slow path does record its sleeps.
        let b = TokenBucket::new(Bandwidth::mib_per_sec(1.0));
        b.acquire(64 * 1024).unwrap();
        b.acquire(16 * 1024).unwrap();
        assert!(b.waits() > 0, "contended acquire should have waited");
    }

    #[test]
    fn tightening_the_rate_drops_the_old_burst() {
        // A fresh fast bucket holds a large burst; throttling it down
        // must make even small acquires wait at the new rate instead of
        // coasting on the old burst.
        let b = TokenBucket::new(Bandwidth::mib_per_sec(100.0));
        b.set_rate(Bandwidth::bytes_per_sec(125.0));
        assert!(
            !b.try_acquire(64),
            "64-byte message must not pass a 125 B/s stall instantly"
        );
        // Lifting the throttle restores full-rate refill.
        b.set_rate(Bandwidth::mib_per_sec(100.0));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_acquire(64 * 1024));
    }

    #[test]
    fn try_acquire_does_not_block() {
        let b = TokenBucket::new(Bandwidth::bytes_per_sec(10.0));
        // Burst floor is 64 KiB, so the first grab succeeds...
        assert!(b.try_acquire(64 * 1024));
        // ...but an immediate second one cannot.
        assert!(!b.try_acquire(64 * 1024));
    }

    #[test]
    fn close_unblocks_waiters() {
        let b = Arc::new(TokenBucket::new(Bandwidth::bytes_per_sec(1.0)));
        b.try_acquire(64 * 1024); // drain burst
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.acquire(1 << 20))
        };
        std::thread::sleep(Duration::from_millis(20));
        b.close();
        assert_eq!(waiter.join().unwrap(), Err(BucketClosed));
        assert!(b.is_closed());
        assert!(!b.try_acquire(1), "closed bucket grants nothing");
    }

    #[test]
    fn set_rate_takes_effect() {
        let b = TokenBucket::new(Bandwidth::bytes_per_sec(1.0));
        b.try_acquire(64 * 1024); // drain burst
        b.set_rate(Bandwidth::mib_per_sec(100.0));
        let start = Instant::now();
        b.acquire(512 * 1024).unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "new rate not applied"
        );
        assert!((b.rate().as_bytes_per_sec() - 100.0 * 1024.0 * 1024.0).abs() < 1.0);
    }
}
