//! The fabric itself: named hosts with shaped NICs, listeners, duplex
//! streams, rack-pair throttles and fault injection.
//!
//! The fabric replaces both the EC2 network and the `tc` tooling of the
//! paper's evaluation:
//!
//! * each host gets an ingress and an egress [`TokenBucket`] sized to its
//!   instance NIC (Table I) — concurrent flows through one host share it;
//! * an optional cross-rack throttle adds a per-host-pair bucket in each
//!   direction for pairs on different racks (§V-B.1's two-rack setup);
//! * per-host throttles (§V-B.2's contention scenario) simply lower that
//!   host's NIC buckets;
//! * [`Fabric::kill_host`] and [`Fabric::cut_link`] break live streams
//!   the way a crashed VM or unplugged link would, which is what the
//!   fault-tolerance tests (Algorithms 3/4) exercise.

use crate::bucket::TokenBucket;
use crate::channel::ByteChannel;
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use smarth_core::error::{DfsError, DfsResult};
use smarth_core::units::Bandwidth;
use smarth_core::wire::FrameIo;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Tuning knobs of a fabric instance.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// One-way propagation latency applied to every stream chunk.
    pub latency: Duration,
    /// Socket buffer per stream direction (bounds sender run-ahead).
    pub socket_buffer: usize,
    /// Shaping granularity: streams draw tokens in chunks of this size.
    pub chunk_size: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            latency: Duration::from_micros(100),
            socket_buffer: 64 * 1024,
            chunk_size: 4 * 1024,
        }
    }
}

#[derive(Debug)]
struct Host {
    name: String,
    rack: String,
    /// Unthrottled NIC rate (instance capability).
    nic: Bandwidth,
    egress: Arc<TokenBucket>,
    ingress: Arc<TokenBucket>,
    alive: AtomicBool,
}

struct Inner {
    config: FabricConfig,
    hosts: Mutex<HashMap<String, Arc<Host>>>,
    listeners: Mutex<HashMap<String, Sender<FabricStream>>>,
    cross_rack: Mutex<Option<Bandwidth>>,
    /// Directional pair throttles, created lazily per (src,dst).
    pair_buckets: Mutex<HashMap<(String, String), Arc<TokenBucket>>>,
    /// Every channel ever created, tagged with its two endpoints, for
    /// fault injection. Weak so finished streams free their memory.
    channels: Mutex<Vec<(String, String, Weak<ByteChannel>)>>,
    /// Host pairs currently partitioned: existing streams between them
    /// are broken and new connects are refused until healed. Stored as
    /// unordered pairs (both orientations blocked).
    partitions: Mutex<std::collections::HashSet<(String, String)>>,
    closed: AtomicBool,
}

fn pair_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

/// Handle to an emulated network. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<Inner>,
}

impl Fabric {
    pub fn new(config: FabricConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                config,
                hosts: Mutex::new(HashMap::new()),
                listeners: Mutex::new(HashMap::new()),
                cross_rack: Mutex::new(None),
                pair_buckets: Mutex::new(HashMap::new()),
                channels: Mutex::new(Vec::new()),
                partitions: Mutex::new(std::collections::HashSet::new()),
                closed: AtomicBool::new(false),
            }),
        }
    }

    /// Registers a host with a NIC of the given bandwidth (both
    /// directions). Panics on duplicate names — scenario bugs, not
    /// runtime faults.
    pub fn add_host(&self, name: &str, rack: &str, nic: Bandwidth) {
        let host = Arc::new(Host {
            name: name.to_string(),
            rack: rack.to_string(),
            nic,
            egress: Arc::new(TokenBucket::new(nic)),
            ingress: Arc::new(TokenBucket::new(nic)),
            alive: AtomicBool::new(true),
        });
        let prev = self.inner.hosts.lock().insert(name.to_string(), host);
        assert!(prev.is_none(), "duplicate host {name}");
    }

    /// Applies (or lifts, with `None`) a `tc`-style throttle on a host's
    /// NIC, both directions. The effective rate is `min(nic, throttle)`.
    pub fn throttle_host(&self, name: &str, throttle: Option<Bandwidth>) -> DfsResult<()> {
        let hosts = self.inner.hosts.lock();
        let host = hosts
            .get(name)
            .ok_or_else(|| DfsError::internal(format!("unknown host {name}")))?;
        let rate = match throttle {
            Some(t) => host.nic.min(t),
            None => host.nic,
        };
        host.egress.set_rate(rate);
        host.ingress.set_rate(rate);
        Ok(())
    }

    /// Sets the cross-rack throttle applied to all traffic between hosts
    /// on different racks (the two-rack experiments). Affects only
    /// connections opened afterwards plus existing pair buckets.
    pub fn set_cross_rack_throttle(&self, bw: Option<Bandwidth>) {
        *self.inner.cross_rack.lock() = bw;
        let buckets = self.inner.pair_buckets.lock();
        for b in buckets.values() {
            b.set_rate(bw.unwrap_or_else(Bandwidth::unlimited));
        }
    }

    pub fn host_rack(&self, name: &str) -> Option<String> {
        self.inner.hosts.lock().get(name).map(|h| h.rack.clone())
    }

    pub fn is_alive(&self, name: &str) -> bool {
        self.inner
            .hosts
            .lock()
            .get(name)
            .is_some_and(|h| h.alive.load(Ordering::SeqCst))
    }

    /// Starts listening on `addr` (format `host:port`). The host part
    /// must be a registered host.
    pub fn listen(&self, addr: &str) -> DfsResult<Listener> {
        let host = host_of(addr)?;
        if !self.inner.hosts.lock().contains_key(host) {
            return Err(DfsError::internal(format!(
                "listen on unknown host {host}"
            )));
        }
        let (tx, rx) = unbounded();
        let prev = self
            .inner
            .listeners
            .lock()
            .insert(addr.to_string(), tx);
        assert!(prev.is_none(), "duplicate listener on {addr}");
        Ok(Listener {
            addr: addr.to_string(),
            rx,
        })
    }

    /// Opens a duplex stream from `from_host` to the listener at
    /// `to_addr`, shaped by both hosts' NICs and any pair throttle.
    pub fn connect(&self, from_host: &str, to_addr: &str) -> DfsResult<FabricStream> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(DfsError::connection_lost("fabric shut down"));
        }
        let to_host = host_of(to_addr)?.to_string();
        let (src, dst) = {
            let hosts = self.inner.hosts.lock();
            let src = hosts
                .get(from_host)
                .ok_or_else(|| DfsError::internal(format!("unknown host {from_host}")))?
                .clone();
            let dst = hosts
                .get(&to_host)
                .ok_or_else(|| DfsError::internal(format!("unknown host {to_host}")))?
                .clone();
            (src, dst)
        };
        if !src.alive.load(Ordering::SeqCst) {
            return Err(DfsError::connection_lost(format!("{from_host} is down")));
        }
        if !dst.alive.load(Ordering::SeqCst) {
            return Err(DfsError::connection_lost(format!("{to_host} is down")));
        }
        if self
            .inner
            .partitions
            .lock()
            .contains(&pair_key(from_host, &to_host))
        {
            return Err(DfsError::connection_lost(format!(
                "link {from_host}<->{to_host} partitioned"
            )));
        }

        let cfg = &self.inner.config;
        let fwd = Arc::new(ByteChannel::new(cfg.socket_buffer, cfg.latency));
        let rev = Arc::new(ByteChannel::new(cfg.socket_buffer, cfg.latency));
        {
            let mut chans = self.inner.channels.lock();
            chans.push((src.name.clone(), dst.name.clone(), Arc::downgrade(&fwd)));
            chans.push((dst.name.clone(), src.name.clone(), Arc::downgrade(&rev)));
            // Opportunistic GC of finished channels.
            if chans.len() > 4096 {
                chans.retain(|(_, _, w)| w.strong_count() > 0);
            }
        }

        let fwd_buckets = self.path_buckets(&src, &dst);
        let rev_buckets = self.path_buckets(&dst, &src);

        let client_end = FabricStream {
            local: src.name.clone(),
            peer: dst.name.clone(),
            out: Arc::clone(&fwd),
            inn: Arc::clone(&rev),
            out_buckets: fwd_buckets,
            chunk: cfg.chunk_size,
            read_deadline: None,
        };
        let server_end = FabricStream {
            local: dst.name.clone(),
            peer: src.name.clone(),
            out: rev,
            inn: fwd,
            out_buckets: rev_buckets,
            chunk: cfg.chunk_size,
            read_deadline: None,
        };

        let listeners = self.inner.listeners.lock();
        let tx = listeners
            .get(to_addr)
            .ok_or_else(|| DfsError::connection_lost(format!("nothing listening on {to_addr}")))?;
        tx.send(server_end)
            .map_err(|_| DfsError::connection_lost(format!("listener on {to_addr} closed")))?;
        Ok(client_end)
    }

    fn path_buckets(&self, src: &Arc<Host>, dst: &Arc<Host>) -> Vec<Arc<TokenBucket>> {
        let mut buckets = vec![Arc::clone(&src.egress), Arc::clone(&dst.ingress)];
        if src.rack != dst.rack {
            if let Some(bw) = *self.inner.cross_rack.lock() {
                let key = (src.name.clone(), dst.name.clone());
                let mut pairs = self.inner.pair_buckets.lock();
                let bucket = pairs
                    .entry(key)
                    .or_insert_with(|| Arc::new(TokenBucket::new(bw)));
                buckets.push(Arc::clone(bucket));
            }
        }
        buckets
    }

    /// Simulates a host crash: all current streams touching it break and
    /// future connects involving it are refused.
    pub fn kill_host(&self, name: &str) {
        if let Some(h) = self.inner.hosts.lock().get(name) {
            h.alive.store(false, Ordering::SeqCst);
        }
        let reason = format!("host {name} killed");
        for (a, b, chan) in self.inner.channels.lock().iter() {
            if a == name || b == name {
                if let Some(c) = chan.upgrade() {
                    c.break_with(&reason);
                }
            }
        }
        self.inner.listeners.lock().retain(|addr, _| {
            host_of(addr).map(|h| h != name).unwrap_or(true)
        });
    }

    /// Revives a previously killed host (used by churn tests). Existing
    /// broken streams stay broken; new connections work again.
    pub fn revive_host(&self, name: &str) {
        if let Some(h) = self.inner.hosts.lock().get(name) {
            h.alive.store(true, Ordering::SeqCst);
        }
    }

    /// Breaks every live stream between two hosts without killing either
    /// (a cable pull).
    pub fn cut_link(&self, a: &str, b: &str) {
        let reason = format!("link {a}<->{b} cut");
        for (x, y, chan) in self.inner.channels.lock().iter() {
            if (x == a && y == b) || (x == b && y == a) {
                if let Some(c) = chan.upgrade() {
                    c.break_with(&reason);
                }
            }
        }
    }

    /// Partitions two hosts: every live stream between them breaks
    /// *and* new connects in either direction are refused until
    /// [`Self::heal_link`]. Unlike [`Self::cut_link`], this holds
    /// against a reconnecting peer — the retry layer cannot sneak a
    /// fresh stream through.
    pub fn partition_link(&self, a: &str, b: &str) {
        self.inner.partitions.lock().insert(pair_key(a, b));
        self.cut_link(a, b);
    }

    /// Lifts a partition installed by [`Self::partition_link`]. Streams
    /// broken while partitioned stay broken; new connects succeed.
    pub fn heal_link(&self, a: &str, b: &str) {
        self.inner.partitions.lock().remove(&pair_key(a, b));
    }

    /// True while `a` and `b` are partitioned (diagnostics/tests).
    pub fn is_partitioned(&self, a: &str, b: &str) -> bool {
        self.inner.partitions.lock().contains(&pair_key(a, b))
    }

    /// Tears down the whole fabric: breaks every stream and removes every
    /// listener so blocked threads exit.
    pub fn shutdown(&self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        for (_, _, chan) in self.inner.channels.lock().iter() {
            if let Some(c) = chan.upgrade() {
                c.break_with("fabric shut down");
            }
        }
        self.inner.listeners.lock().clear();
        for h in self.inner.hosts.lock().values() {
            h.egress.close();
            h.ingress.close();
        }
    }
}

fn host_of(addr: &str) -> DfsResult<&str> {
    addr.split(':')
        .next()
        .filter(|h| !h.is_empty())
        .ok_or_else(|| DfsError::internal(format!("malformed address {addr}")))
}

/// Accept side of a listening address.
pub struct Listener {
    addr: String,
    rx: Receiver<FabricStream>,
}

impl Listener {
    /// Blocks for the next inbound stream; errors once the fabric (or
    /// this listener's host) is shut down.
    pub fn accept(&self) -> DfsResult<FabricStream> {
        self.rx
            .recv()
            .map_err(|_| DfsError::connection_lost(format!("listener {} closed", self.addr)))
    }

    /// Non-blocking accept with timeout, for orderly server shutdown.
    pub fn accept_timeout(&self, timeout: Duration) -> DfsResult<Option<FabricStream>> {
        match self.rx.recv_timeout(timeout) {
            Ok(s) => Ok(Some(s)),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(
                DfsError::connection_lost(format!("listener {} closed", self.addr)),
            ),
        }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }
}

/// One end of an emulated duplex connection. Writing pays bandwidth
/// tokens along the path (source egress, destination ingress, optional
/// pair throttle); reading observes latency and backpressure.
pub struct FabricStream {
    local: String,
    peer: String,
    out: Arc<ByteChannel>,
    inn: Arc<ByteChannel>,
    out_buckets: Vec<Arc<TokenBucket>>,
    chunk: usize,
    /// Absolute deadline applied to every inbound read; `None` blocks
    /// indefinitely (the default, and the write path's behaviour).
    read_deadline: Option<std::time::Instant>,
}

impl FabricStream {
    pub fn local_host(&self) -> &str {
        &self.local
    }

    pub fn peer_host(&self) -> &str {
        &self.peer
    }

    /// Sets (or clears) the absolute deadline for subsequent reads on
    /// this stream. A read that cannot complete by the deadline fails
    /// with [`DfsError::Timeout`] instead of blocking forever — the
    /// reader's escape hatch from a stalled-but-alive peer.
    pub fn set_read_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.read_deadline = deadline;
    }

    /// Bytes currently queued towards the peer (diagnostics/tests).
    pub fn outbound_buffered(&self) -> usize {
        self.out.buffered_bytes()
    }

    pub fn inbound_ready(&self) -> bool {
        self.inn.has_pending()
    }

    /// Gracefully closes the outbound direction (like `shutdown(WR)`).
    pub fn close_write(&self) {
        self.out.close_write();
    }

    pub fn is_broken(&self) -> bool {
        self.out.is_broken() || self.inn.is_broken()
    }
}

impl FabricStream {
    /// Splits the duplex stream into independently usable read and write
    /// halves, so one thread can read inbound frames while another
    /// writes outbound frames (the pipeline pattern: a datanode's
    /// receiver reads packets while its responder writes acks on the
    /// same connection).
    pub fn split(self) -> (ReadHalf, WriteHalf) {
        // Suppress Drop's close: the halves own closing now.
        let this = std::mem::ManuallyDrop::new(self);
        let read = ReadHalf {
            peer: this.peer.clone(),
            inn: Arc::clone(&this.inn),
        };
        let write = WriteHalf {
            peer: this.peer.clone(),
            out: Arc::clone(&this.out),
            out_buckets: this.out_buckets.clone(),
            chunk: this.chunk,
        };
        (read, write)
    }
}

/// Read half of a split [`FabricStream`].
pub struct ReadHalf {
    peer: String,
    inn: Arc<ByteChannel>,
}

impl ReadHalf {
    pub fn peer_host(&self) -> &str {
        &self.peer
    }
}

impl FrameIo for ReadHalf {
    fn write_all(&mut self, _buf: &[u8]) -> DfsResult<()> {
        Err(DfsError::internal("write on read half"))
    }
    fn read_exact(&mut self, buf: &mut [u8]) -> DfsResult<()> {
        self.inn.read_exact(buf)
    }
}

impl Drop for ReadHalf {
    fn drop(&mut self) {
        self.inn.close_read();
    }
}

/// Write half of a split [`FabricStream`].
pub struct WriteHalf {
    peer: String,
    out: Arc<ByteChannel>,
    out_buckets: Vec<Arc<TokenBucket>>,
    chunk: usize,
}

impl WriteHalf {
    pub fn peer_host(&self) -> &str {
        &self.peer
    }

    pub fn close_write(&self) {
        self.out.close_write();
    }
}

fn shaped_write(
    out: &ByteChannel,
    buckets: &[Arc<TokenBucket>],
    chunk_size: usize,
    buf: &[u8],
) -> DfsResult<()> {
    for chunk in buf.chunks(chunk_size) {
        for bucket in buckets {
            bucket
                .acquire(chunk.len())
                .map_err(|_| DfsError::connection_lost("path bucket closed"))?;
        }
        out.push(Bytes::copy_from_slice(chunk))?;
    }
    Ok(())
}

impl FrameIo for WriteHalf {
    fn write_all(&mut self, buf: &[u8]) -> DfsResult<()> {
        shaped_write(&self.out, &self.out_buckets, self.chunk, buf)
    }
    fn read_exact(&mut self, _buf: &mut [u8]) -> DfsResult<()> {
        Err(DfsError::internal("read on write half"))
    }
}

impl Drop for WriteHalf {
    fn drop(&mut self) {
        self.out.close_write();
    }
}

impl FrameIo for FabricStream {
    fn write_all(&mut self, buf: &[u8]) -> DfsResult<()> {
        shaped_write(&self.out, &self.out_buckets, self.chunk, buf)
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> DfsResult<()> {
        match self.read_deadline {
            Some(deadline) => self.inn.read_exact_deadline(buf, deadline),
            None => self.inn.read_exact(buf),
        }
    }
}

impl Drop for FabricStream {
    fn drop(&mut self) {
        self.out.close_write();
        self.inn.close_read();
    }
}

impl std::fmt::Debug for FabricStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FabricStream({} -> {})", self.local, self.peer)
    }
}
