//! # smarth
//!
//! Facade crate for the SMARTH reproduction (ICPP 2014, "SMARTH:
//! Enabling Multi-pipeline Data Transfer in HDFS"). Re-exports the whole
//! workspace so examples and downstream users need a single dependency:
//!
//! * [`core`] — shared types, config, placement algorithms, cost model.
//! * [`fabric`] — real-time in-memory network emulation.
//! * [`namenode`] / [`datanode`] / [`client`] — the DFS node
//!   implementations with both the stock HDFS and the SMARTH write
//!   protocols.
//! * [`cluster`] — MiniCluster orchestration and the paper's scenarios.
//! * [`sim`] — deterministic discrete-event simulator at paper scale.

pub use smarth_client as client;
pub use smarth_cluster as cluster;
pub use smarth_core as core;
pub use smarth_datanode as datanode;
pub use smarth_fabric as fabric;
pub use smarth_namenode as namenode;
pub use smarth_sim as sim;
