//! Integration tests for causal block-lifecycle tracing
//! (`smarth_core::trace`): multiple SMARTH writers contend on one
//! observed cluster and the assembled per-block timelines must satisfy
//! the trace invariants — one FNFA span per committed block, overlapping
//! pipeline spans per client, well-nested allocation → open → close
//! spans — on both the threaded emulator (real time) and the
//! discrete-event simulator (virtual time, real minted block ids).

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::ids::{BlockId, ClientId};
use smarth::core::json;
use smarth::core::obs::{Obs, RingBufferSink};
use smarth::core::trace::{to_chrome_trace, TraceAssembler, TraceReport};
use smarth::core::units::{Bandwidth, ByteSize};
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use smarth::sim::scenario::two_rack;
use smarth::sim::simulate_upload_with_obs;

const UPLOAD_BYTES: usize = 2_500_000; // 10 blocks at the 256 KiB test scale

fn fast_config() -> DfsConfig {
    let mut c = DfsConfig::test_scale();
    c.disk_bandwidth = Bandwidth::unlimited();
    c.heartbeat_interval = SimDuration::from_millis(25);
    c
}

/// Asserts the span invariants every assembled timeline must satisfy:
/// a trace id is present, allocation ≤ open ≤ close, and committed
/// blocks carry exactly one FNFA inside their pipeline span.
fn assert_well_formed(report: &TraceReport) {
    for b in &report.blocks {
        assert!(b.trace.is_some(), "block {} has no trace id", b.block);
        assert!(b.client.is_some(), "block {} has no owning client", b.block);
        let alloc = b.allocated_us.unwrap_or_else(|| panic!("{} never allocated", b.block));
        let open = b.opened_us.unwrap_or_else(|| panic!("{} never opened", b.block));
        let close = b.closed_us.unwrap_or_else(|| panic!("{} never closed", b.block));
        assert!(
            alloc <= open && open <= close,
            "{}: spans must nest, got alloc {alloc} open {open} close {close}",
            b.block
        );
        if b.committed {
            let fnfa = b
                .fnfa_us
                .unwrap_or_else(|| panic!("committed block {} has no FNFA span", b.block));
            assert!(
                open <= fnfa && fnfa <= close,
                "{}: FNFA at {fnfa} outside pipeline span [{open}, {close}]",
                b.block
            );
        }
    }
    // Trace ids are minted per block allocation, so they never repeat
    // across timelines.
    let mut traces: Vec<_> = report.blocks.iter().filter_map(|b| b.trace).collect();
    let total = traces.len();
    traces.sort();
    traces.dedup();
    assert_eq!(traces.len(), total, "trace ids must be unique per block");
}

#[test]
fn concurrent_smarth_writers_assemble_into_disjoint_well_formed_traces() {
    let sink = RingBufferSink::new(262_144);
    let obs = Obs::new(sink.clone());
    // The cross-rack throttle keeps pipeline drain slow enough that
    // FNFA-driven overlap is robustly observable per writer.
    let mut spec = ClusterSpec::homogeneous(InstanceType::Large);
    spec.cross_rack_throttle = Some(Bandwidth::mbps(300.0));
    let cluster = MiniCluster::start_with_obs(&spec, fast_config(), 21, obs).unwrap();

    // Two clients race full multi-block uploads through the same
    // datanodes; their events interleave in one shared sink.
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let data = random_data(100 + w, UPLOAD_BYTES);
            let path = format!("/trace/file-{w}.bin");
            let report = client.put(&path, &data, WriteMode::Smarth).unwrap();
            (client.id(), report.stats.blocks_committed)
        }));
    }
    let writers: Vec<(ClientId, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    cluster.shutdown();

    let report = TraceAssembler::assemble(&sink.snapshot());
    assert!(!report.virtual_time, "emulator events carry real time");
    assert_well_formed(&report);
    assert_eq!(report.clients.len(), 2, "one summary per writer");
    assert_ne!(writers[0].0, writers[1].0, "writers get distinct client ids");

    for (id, blocks) in &writers {
        assert!(*blocks >= 2, "upload must span several blocks, got {blocks}");
        let c = report.client(*id).expect("summary for each writer");
        assert_eq!(c.committed, *blocks, "{id}: every block must commit");
        assert_eq!(
            c.fnfa_count, *blocks,
            "{id}: exactly one FNFA per committed block"
        );
        assert!(
            c.max_concurrent >= 2,
            "{id}: SMARTH must overlap pipelines, peak {}",
            c.max_concurrent
        );
        assert!(
            c.overlap_pairs >= 1,
            "{id}: at least one pipeline-span pair must intersect"
        );
        assert!(
            c.fnfa_to_allocation_us.count() > 0,
            "{id}: FNFA→next-allocation latency must be sampled"
        );
    }

    // The Chrome trace_event rendering of the same report survives a
    // serialize → parse round trip and keeps one lane per block.
    let text = to_chrome_trace(&report).to_string_compact();
    let parsed = json::parse(&text).expect("trace JSON must parse");
    let events = parsed
        .get("traceEvents")
        .as_array()
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut lanes: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").as_u64())
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert_eq!(
        lanes.len(),
        report.blocks.len(),
        "one trace lane (tid) per block timeline"
    );
}

#[test]
fn simulator_traces_satisfy_the_same_invariants_with_real_block_ids() {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let scenario = two_rack(
        InstanceType::Small,
        ByteSize::mib(512),
        Some(Bandwidth::mbps(60.0)),
        WriteMode::Smarth,
    );
    let result = simulate_upload_with_obs(&scenario, obs);

    let report = TraceAssembler::assemble(&sink.snapshot());
    assert!(report.virtual_time, "simulator events carry virtual time");
    assert_well_formed(&report);
    assert_eq!(report.blocks.len() as u64, result.blocks);
    assert_eq!(report.committed_blocks(), result.blocks);

    // The simulator mints real monotonic block ids at allocation time —
    // a dense 1..=n sequence, not recycled per-pipe placeholders.
    let mut ids: Vec<u64> = report.blocks.iter().map(|b| b.block.raw()).collect();
    ids.sort_unstable();
    let expected: Vec<u64> = (1..=result.blocks).collect();
    assert_eq!(ids, expected, "block ids must be freshly minted per block");
    assert!(
        report.blocks.iter().all(|b| b.block != BlockId::INVALID),
        "no sentinel block ids in the stream"
    );

    let c = &report.clients[0];
    assert_eq!(c.fnfa_count, result.blocks, "one FNFA per simulated block");
    assert!(
        c.max_concurrent >= 2 && c.overlap_pairs >= 1,
        "virtual-time pipeline spans must overlap (peak {}, pairs {})",
        c.max_concurrent,
        c.overlap_pairs
    );
    assert!(
        report.fnfa_to_allocation_us.count() > 0,
        "virtual-time FNFA→allocation latency must be sampled"
    );
    assert_eq!(
        c.max_concurrent, result.max_concurrent_pipelines,
        "assembled concurrency matches the simulator's own accounting"
    );
}
