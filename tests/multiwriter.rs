//! Multi-writer workloads — a step toward the paper's other future-work
//! item ("investigate SMARTH's impact on MapReduce jobs"): many
//! concurrent writers, like reducers materializing output partitions,
//! hammering the same cluster in both protocols.

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::units::Bandwidth;
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use std::sync::Arc;

fn fast_config() -> DfsConfig {
    let mut c = DfsConfig::test_scale();
    c.disk_bandwidth = Bandwidth::unlimited();
    c.heartbeat_interval = SimDuration::from_millis(25);
    c
}

#[test]
fn eight_concurrent_smarth_writers_all_verify() {
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = Arc::new(MiniCluster::start(&spec, fast_config(), 61).unwrap());
    let handles: Vec<_> = (0..8u64)
        .map(|i| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let client = cluster.client().unwrap();
                let data = random_data(500 + i, 600_000);
                let path = format!("/mr/part-{i:05}");
                let report = client.put(&path, &data, WriteMode::Smarth).unwrap();
                assert_eq!(report.stats.recoveries, 0);
                assert_eq!(client.get(&path).unwrap(), data);
                report.bytes
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 8 * 600_000);
}

#[test]
fn concurrent_writers_with_contention_and_failure() {
    // Reducer-style output with two slow nodes AND a mid-run datanode
    // crash: every surviving writer must finish with intact data.
    let spec = ClusterSpec::homogeneous(InstanceType::Large)
        .with_throttled_datanodes(2, Bandwidth::mbps(60.0));
    let cluster = Arc::new(MiniCluster::start(&spec, fast_config(), 67).unwrap());

    let writers: Vec<_> = (0..4u64)
        .map(|i| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let client = cluster.client().unwrap();
                let data = random_data(900 + i, 1_200_000);
                let path = format!("/mrf/part-{i:05}");
                let mode = if i % 2 == 0 {
                    WriteMode::Smarth
                } else {
                    WriteMode::Hdfs
                };
                client.put(&path, &data, mode).unwrap();
                (path, data)
            })
        })
        .collect();

    // Kill one datanode while writers are in flight. Pick one that is
    // mid-pipeline if possible; otherwise any replica holder.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let victim = cluster
        .datanode_hosts()
        .into_iter()
        .find(|h| {
            let store = cluster.datanode(h).unwrap().store();
            store.replica_count() > store.finalized_blocks().len()
        })
        .or_else(|| {
            cluster
                .datanode_hosts()
                .into_iter()
                .find(|h| cluster.datanode(h).unwrap().store().replica_count() > 0)
        });
    if let Some(v) = victim {
        cluster.kill_datanode(&v).unwrap();
    }

    let reader = cluster.client().unwrap();
    for w in writers {
        let (path, data) = w.join().expect("writer must not panic");
        assert_eq!(
            reader.get(&path).unwrap(),
            data,
            "{path} corrupted by concurrent failure"
        );
    }
}

#[test]
fn writers_isolated_by_lease() {
    // Two clients racing to create the same path: exactly one wins; the
    // loser gets AlreadyExists and can pick another name.
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = Arc::new(MiniCluster::start(&spec, fast_config(), 71).unwrap());
    let a = cluster.client().unwrap();
    let b = cluster.client().unwrap();
    let sa = a.create("/race/target", WriteMode::Smarth);
    let sb = b.create("/race/target", WriteMode::Smarth);
    assert!(
        sa.is_ok() ^ sb.is_ok(),
        "exactly one create must win the race deterministically"
    );
    // Whichever stream won can complete normally.
    let mut winner = sa.or(sb).unwrap();
    winner.write(&random_data(1, 10_000)).unwrap();
    winner.close().unwrap();
    assert!(a.exists("/race/target").unwrap());
}
