//! Harsh fault-tolerance integration tests for Algorithms 3 and 4:
//! sequential double failures, first-datanode loss, failure during the
//! final ack drain, and recovery bookkeeping at the namenode.

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::units::Bandwidth;
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};

fn fast_config() -> DfsConfig {
    let mut c = DfsConfig::test_scale();
    c.disk_bandwidth = Bandwidth::unlimited();
    c.heartbeat_interval = SimDuration::from_millis(25);
    c
}

fn cluster(datanodes_to_keep: usize, seed: u64) -> MiniCluster {
    let mut spec = ClusterSpec::homogeneous(InstanceType::Large);
    spec.hosts.retain(|h| {
        h.role != smarth::core::HostRole::DataNode
            || h.name
                .strip_prefix("dn")
                .and_then(|s| s.parse::<usize>().ok())
                .is_some_and(|i| i < datanodes_to_keep)
    });
    spec.link_latency = SimDuration::ZERO;
    MiniCluster::start(&spec, fast_config(), seed).unwrap()
}

/// Kills the datanode hosting an in-flight (RBW) replica, polling until
/// one exists.
fn kill_inflight_victim(cluster: &MiniCluster, exclude: &[String]) -> String {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let found = cluster.datanode_hosts().into_iter().find(|h| {
            if exclude.contains(h) {
                return false;
            }
            let store = cluster.datanode(h).unwrap().store();
            store.replica_count() > store.finalized_blocks().len()
        });
        if let Some(v) = found {
            cluster.kill_datanode(&v).unwrap();
            return v;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no in-flight replica appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

#[test]
fn sequential_double_failure_smarth() {
    // Two datanodes die at different points of the upload; the stream
    // recovers twice and the file survives.
    let cluster = cluster(8, 31);
    let client = cluster.client().unwrap();
    let data = random_data(42, 2_500_000);

    let mut stream = client.create("/dbl/a.bin", WriteMode::Smarth).unwrap();
    stream.write(&data[..600_000]).unwrap();
    let first = kill_inflight_victim(&cluster, &[]);
    stream.write(&data[600_000..1_400_000]).unwrap();
    let second = kill_inflight_victim(&cluster, std::slice::from_ref(&first));
    assert_ne!(first, second);
    stream.write(&data[1_400_000..]).unwrap();
    let stats = stream.close().unwrap();
    assert!(
        stats.recoveries >= 2,
        "two kills must trigger at least two recoveries, got {}",
        stats.recoveries
    );
    assert_eq!(client.get("/dbl/a.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn failure_during_final_drain_smarth() {
    // Kill a node after the last byte is written but (likely) before all
    // pipelines drained: close() must still succeed via Algorithm 4.
    let cluster = cluster(6, 37);
    let client = cluster.client().unwrap();
    // Slow the cross-rack hop so pending pipelines exist at close time.
    cluster.fabric().set_cross_rack_throttle(Some(Bandwidth::mbps(40.0)));
    let data = random_data(17, 1_800_000);
    let mut stream = client.create("/drain/x.bin", WriteMode::Smarth).unwrap();
    stream.write(&data).unwrap();
    // At this point the last block has FNFA'd but cross-rack replication
    // is still draining. Kill an in-flight replica holder if any exists;
    // if everything already finalized the close simply succeeds.
    let victim = cluster.datanode_hosts().into_iter().find(|h| {
        let store = cluster.datanode(h).unwrap().store();
        store.replica_count() > store.finalized_blocks().len()
    });
    if let Some(v) = &victim {
        cluster.kill_datanode(v).unwrap();
    }
    let stats = stream.close().unwrap();
    if victim.is_some() {
        // Either recovery ran, or the pipeline finished racing the kill.
        // In both cases the data must verify below.
        let _ = stats;
    }
    assert_eq!(client.get("/drain/x.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn hdfs_mode_first_datanode_failure() {
    // The stream's pipeline connection target itself dies.
    let cluster = cluster(6, 41);
    let client = cluster.client().unwrap();
    let data = random_data(23, 1_200_000);
    let mut stream = client.create("/first/fail.bin", WriteMode::Hdfs).unwrap();
    stream.write(&data[..300_000]).unwrap();
    let _victim = kill_inflight_victim(&cluster, &[]);
    stream.write(&data[300_000..]).unwrap();
    let stats = stream.close().unwrap();
    assert!(stats.recoveries >= 1);
    assert_eq!(client.get("/first/fail.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn reads_fail_over_to_surviving_replicas() {
    let cluster = cluster(5, 43);
    let client = cluster.client().unwrap();
    let data = random_data(29, 700_000);
    client.put("/ro/f.bin", &data, WriteMode::Smarth).unwrap();
    // Kill one replica holder; reads must fail over to the others.
    let victim = cluster
        .datanode_hosts()
        .into_iter()
        .find(|h| cluster.datanode(h).unwrap().store().replica_count() > 0)
        .unwrap();
    cluster.kill_datanode(&victim).unwrap();
    assert_eq!(client.get("/ro/f.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn upload_survives_minimum_viable_cluster() {
    // Exactly replication-many datanodes: any loss leaves fewer nodes
    // than replicas. Recovery must continue at reduced width.
    let cluster = cluster(3, 47);
    let client = cluster.client().unwrap();
    let data = random_data(31, 1_000_000);
    let mut stream = client.create("/minimal/f.bin", WriteMode::Smarth).unwrap();
    stream.write(&data[..400_000]).unwrap();
    let _ = kill_inflight_victim(&cluster, &[]);
    stream.write(&data[400_000..]).unwrap();
    let stats = stream.close().unwrap();
    assert!(stats.recoveries >= 1);
    assert_eq!(client.get("/minimal/f.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn namenode_replica_accounting_after_recovery() {
    let cluster = cluster(6, 53);
    let client = cluster.client().unwrap();
    let data = random_data(61, 900_000);
    let mut stream = client.create("/acct/f.bin", WriteMode::Smarth).unwrap();
    stream.write(&data[..300_000]).unwrap();
    let _ = kill_inflight_victim(&cluster, &[]);
    stream.write(&data[300_000..]).unwrap();
    stream.close().unwrap();

    // Every block of the file must report at least one current-
    // generation replica at the namenode, and the file reads back.
    let info = client.file_info("/acct/f.bin").unwrap().unwrap();
    assert!(info.complete);
    assert_eq!(info.len, data.len() as u64);
    assert_eq!(client.get("/acct/f.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn second_fault_during_recovery_attributed_as_nested() {
    // Regression: a replica holder lost *while recovery for the same
    // block is already running* used to be folded into the original
    // incident's cause. The two incidents must surface as two
    // separately-attributed recoveries: the original cause plus a
    // distinct `nested_failure`.
    use smarth::core::obs::{Obs, RecoveryCause, RingBufferSink};
    use smarth::core::trace::TraceAssembler;

    let mut spec = ClusterSpec::homogeneous(InstanceType::Large);
    spec.hosts.retain(|h| {
        h.role != smarth::core::HostRole::DataNode
            || h.name
                .strip_prefix("dn")
                .and_then(|s| s.parse::<usize>().ok())
                .is_some_and(|i| i < 8)
    });
    spec.link_latency = SimDuration::ZERO;
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let cluster = MiniCluster::start_with_obs(&spec, fast_config(), 59, obs).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(67, 1_500_000);
    let mut stream = client.create("/nested/f.bin", WriteMode::Smarth).unwrap();
    stream.write(&data[..400_000]).unwrap();

    // Find one in-flight block with at least two RBW replica holders and
    // kill both at once: the first death starts the recovery, the second
    // is discovered by the recovery's own replica probe.
    let victims = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let mut holders: std::collections::HashMap<_, Vec<String>> =
                std::collections::HashMap::new();
            for h in cluster.datanode_hosts() {
                for b in cluster.datanode(&h).unwrap().store().rbw_blocks() {
                    holders.entry(b).or_default().push(h.clone());
                }
            }
            if let Some((_, hosts)) = holders.into_iter().find(|(_, v)| v.len() >= 2) {
                break hosts;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no block ever had two in-flight replicas"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    };
    cluster.kill_datanode(&victims[0]).unwrap();
    cluster.kill_datanode(&victims[1]).unwrap();

    stream.write(&data[400_000..]).unwrap();
    let stats = stream.close().unwrap();
    assert!(
        stats.recoveries >= 2,
        "both deaths must be accounted, got {}",
        stats.recoveries
    );

    let m = cluster.obs().metrics();
    let nested = m.recoveries(RecoveryCause::NestedFailure);
    let original = m.recoveries(RecoveryCause::ConnectionLost)
        + m.recoveries(RecoveryCause::DatanodeError)
        + m.recoveries(RecoveryCause::AckTimeout);
    assert!(
        nested >= 1,
        "mid-recovery death must be attributed as nested_failure \
         (nested={nested}, original={original})"
    );
    assert!(
        original >= 1,
        "the triggering incident must keep its own cause \
         (nested={nested}, original={original})"
    );

    // The assembled trace carries the distinction per span.
    let report = TraceAssembler::assemble(&sink.snapshot());
    let spans: Vec<_> = report
        .blocks
        .iter()
        .flat_map(|b| b.recoveries.iter())
        .collect();
    assert!(spans.iter().any(|r| r.nested));
    assert!(spans.iter().any(|r| !r.nested));
    assert!(spans
        .iter()
        .filter(|r| r.nested)
        .all(|r| r.cause == RecoveryCause::NestedFailure));

    assert_eq!(client.get("/nested/f.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn flush_stage_fault_surfaces_as_error_ack_and_recovers() {
    // The staged write path moves disk writes onto a dedicated flusher
    // thread. A flush-stage failure (here: the RBW replica vanishing
    // under the flusher, so its next `write_packet` fails) must surface
    // as an error ack on the existing ack stream — driving the client's
    // normal recovery causes — not as a silent stall or a bare socket
    // drop with no attribution.
    use smarth::core::obs::{Obs, RecoveryCause, RingBufferSink};
    use smarth::core::trace::TraceAssembler;

    let mut spec = ClusterSpec::homogeneous(InstanceType::Large);
    spec.hosts.retain(|h| {
        h.role != smarth::core::HostRole::DataNode
            || h.name
                .strip_prefix("dn")
                .and_then(|s| s.parse::<usize>().ok())
                .is_some_and(|i| i < 6)
    });
    spec.link_latency = SimDuration::ZERO;
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let cluster = MiniCluster::start_with_obs(&spec, fast_config(), 83, obs).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(91, 1_000_000);

    let mut stream = client.create("/flush/fault.bin", WriteMode::Smarth).unwrap();
    // Stay inside the first 256 KiB block so it cannot finalize before
    // the fault lands: more packets for this block are still to come.
    stream.write(&data[..100_000]).unwrap();

    // Yank an in-flight RBW replica out from under a datanode's flusher.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    'found: loop {
        for h in cluster.datanode_hosts() {
            let store = cluster.datanode(&h).unwrap().store();
            if let Some(block) = store.rbw_blocks().into_iter().next() {
                assert!(store.remove(block), "rbw replica vanished before removal");
                break 'found;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no in-flight replica appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // The rest of the block hits the gutted store: its flusher fails,
    // acks the error upstream, and the client pipeline recovers.
    stream.write(&data[100_000..]).unwrap();
    let stats = stream.close().unwrap();
    assert!(
        stats.recoveries >= 1,
        "flush fault must trigger a recovery, got {}",
        stats.recoveries
    );

    // The incident carries a cause the recovery machinery already knows:
    // the error ack yields datanode_error; the connection teardown that
    // follows may be observed first on some interleavings.
    let m = cluster.obs().metrics();
    let attributed = m.recoveries(RecoveryCause::DatanodeError)
        + m.recoveries(RecoveryCause::ConnectionLost)
        + m.recoveries(RecoveryCause::AckTimeout);
    assert!(
        attributed >= 1,
        "flush fault must be attributed to an existing recovery cause"
    );

    // Every recovery span in the assembled trace must be balanced: the
    // incident reported a conclusion, not a dangling start.
    let report = TraceAssembler::assemble(&sink.snapshot());
    let spans: Vec<_> = report
        .blocks
        .iter()
        .flat_map(|b| b.recoveries.iter())
        .collect();
    assert!(!spans.is_empty(), "trace must carry the recovery span");
    assert!(
        spans.iter().all(|r| r.end_us.is_some()),
        "unbalanced recovery span in trace: {spans:?}"
    );

    assert_eq!(client.get("/flush/fault.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn stalled_datanode_record_ages_out_and_re_earns_after_restore() {
    // Speed-record aging (namenode side): with a half-life configured,
    // a datanode that stops producing fresh speed reports loses its
    // standing exponentially instead of keeping a stale record forever;
    // once the stall lifts and it carries traffic again, a fresh report
    // restores it at full weight.
    let mut config = fast_config();
    config.speed_half_life = Some(SimDuration::from_millis(100));
    let mut spec = ClusterSpec::homogeneous(InstanceType::Large);
    spec.hosts.retain(|h| {
        h.role != smarth::core::HostRole::DataNode
            || h.name
                .strip_prefix("dn")
                .and_then(|s| s.parse::<usize>().ok())
                .is_some_and(|i| i < 6)
    });
    spec.link_latency = SimDuration::ZERO;
    let cluster = MiniCluster::start(&spec, config, 73).unwrap();
    let client = cluster.client().unwrap();

    // Warm the registry with a multi-block SMARTH upload.
    client
        .put("/age/warm.bin", &random_data(1, 1_200_000), WriteMode::Smarth)
        .unwrap();
    client.flush_speed_report().unwrap();
    let warm = cluster.namenode_state().speed_records(client.id());
    assert!(!warm.is_empty(), "warm-up must leave speed records");
    let (victim_id, warm_rate) = warm
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let victim_host = cluster
        .datanode_hosts()
        .into_iter()
        .find(|h| cluster.datanode(h).unwrap().id() == victim_id)
        .unwrap();

    // Stall the fastest recorded node. No fresh reports arrive while it
    // crawls, so several half-lives later its record must have decayed
    // to a fraction of the warm value (or dropped below the floor).
    cluster
        .throttle_host(&victim_host, Some(Bandwidth::mbps(0.5)))
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(450));
    let aged = cluster.namenode_state().speed_records(client.id());
    if let Some((_, decayed)) = aged.iter().find(|(d, _)| *d == victim_id) {
        assert!(
            *decayed < warm_rate * 0.2,
            "4+ half-lives must shrink the record: warm {warm_rate:.0} B/s, \
             still {decayed:.0} B/s"
        );
    }

    // Restore the node and keep writing: as soon as it carries a
    // pipeline hop again, the client's next report must re-earn its
    // record at fresh (undecayed) strength.
    cluster.throttle_host(&victim_host, None).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(15);
    let mut round = 0u64;
    loop {
        round += 1;
        client
            .put(
                &format!("/age/re{round}.bin"),
                &random_data(100 + round, 1_200_000),
                WriteMode::Smarth,
            )
            .unwrap();
        client.flush_speed_report().unwrap();
        let records = cluster.namenode_state().speed_records(client.id());
        if let Some((_, rate)) = records.iter().find(|(d, _)| *d == victim_id) {
            if *rate > warm_rate * 0.25 {
                break; // fresh report landed: record re-earned
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "restored datanode {victim_host} never re-earned its speed record"
        );
    }
    cluster.shutdown();
}
