//! Hostile concurrency battery for the sharded namenode: disjoint
//! volumes hammered from many threads while cross-shard renames and
//! full listings run through the middle, a serially-replayed oracle
//! over the final namespace, digest invariance across shard counts,
//! and the slow-tenant throughput proof that sharding actually buys
//! isolation (a pinned shard stalls 1/N of the namespace, not all of
//! it).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::conformance::{diff_digests, ToleranceBands, TraceDigest};
use smarth::core::ids::{ClientId, FileId};
use smarth::core::obs::{Obs, RingBufferSink};
use smarth::core::proto::{
    ClientRequest, ClientResponse, DatanodeRequest, DatanodeResponse,
};
use smarth::core::trace::TraceAssembler;
use smarth::core::units::{Bandwidth, ByteSize};
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use smarth::namenode::NameNodeState;
use smarth::sim::{simulate_upload_with_obs, SimScenario};

fn state_with_shards(shards: usize, datanodes: u32) -> Arc<NameNodeState> {
    let mut config = DfsConfig::test_scale();
    config.namenode_shards = shards;
    let st = Arc::new(NameNodeState::new(config, 7));
    for i in 0..datanodes {
        let rack = if i % 2 == 0 { "rack-a" } else { "rack-b" };
        match st.handle_datanode_request(DatanodeRequest::Register {
            host_name: format!("dn{i}"),
            rack: rack.into(),
            data_addr: format!("dn{i}:50010"),
            capacity: 1 << 30,
        }) {
            DatanodeResponse::Registered { id: _ } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    st
}

fn register_client(st: &NameNodeState) -> ClientId {
    match st.handle_client_request(ClientRequest::Register {
        host_name: "client".into(),
        rack: "rack-a".into(),
    }) {
        ClientResponse::Registered { client } => client,
        other => panic!("unexpected {other:?}"),
    }
}

/// Full create→addBlock→complete sequence; returns the file id.
fn write_file(st: &NameNodeState, client: ClientId, path: &str, len: u64) -> FileId {
    let file = match st.handle_client_request(ClientRequest::Create {
        client,
        path: path.into(),
        replication: 3,
        block_size: 1 << 20,
        overwrite: false,
        mode: WriteMode::Hdfs,
    }) {
        ClientResponse::Created { file_id } => file_id,
        other => panic!("create {path}: {other:?}"),
    };
    let lb = match st.handle_client_request(ClientRequest::AddBlock {
        client,
        file_id: file,
        previous: None,
        excluded: vec![],
    }) {
        ClientResponse::BlockAllocated(lb) => lb,
        other => panic!("addBlock {path}: {other:?}"),
    };
    let done = smarth::core::ids::ExtendedBlock::new(lb.block.id, lb.block.gen, len);
    for t in &lb.targets {
        match st.handle_datanode_request(DatanodeRequest::BlockReceived {
            id: t.id,
            block: done,
        }) {
            DatanodeResponse::BlockReceivedAck => {}
            other => panic!("blockReceived {path}: {other:?}"),
        }
    }
    match st.handle_client_request(ClientRequest::Complete {
        client,
        file_id: file,
        last: Some(done),
    }) {
        ClientResponse::Completed => file,
        other => panic!("complete {path}: {other:?}"),
    }
}

/// What one worker believes its volume looks like when it stops.
#[derive(Default)]
struct VolumeOracle {
    /// path → expected length of a complete, surviving file.
    live: std::collections::BTreeMap<String, u64>,
    /// paths created then deleted — must NOT resolve afterwards.
    dead: Vec<String>,
}

/// N hammer threads on disjoint volumes (create/addBlock/complete/
/// delete) while a rival thread runs cross-shard renames and full
/// listings. The run must finish inside a generous deadline (deadlock
/// detection), and the final namespace must agree with each worker's
/// serially-replayed oracle — volumes are disjoint, so each worker's
/// log alone determines its volume's final state.
#[test]
fn concurrent_hammer_agrees_with_serial_oracle() {
    const WORKERS: usize = 6;
    const OPS: usize = 60;
    let st = state_with_shards(8, 9);
    let started = Instant::now();
    let deadline = Duration::from_secs(120);

    let stop_renamer = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(WORKERS + 1));

    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let st = Arc::clone(&st);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let client = register_client(&st);
            let vol = format!("/hammer{w}");
            let mut oracle = VolumeOracle::default();
            barrier.wait();
            for op in 0..OPS {
                let path = format!("{vol}/f{}", op % 7);
                match op % 3 {
                    // create+complete (every third op deletes below, so
                    // re-creates of a live name use a fresh file name).
                    0 | 1 => {
                        if oracle.live.contains_key(&path) {
                            match st.handle_client_request(ClientRequest::Delete {
                                path: path.clone(),
                            }) {
                                ClientResponse::Deleted { existed: true } => {}
                                other => panic!("delete live {path}: {other:?}"),
                            }
                        }
                        let len = (op as u64 + 1) * 10;
                        write_file(&st, client, &path, len);
                        oracle.live.insert(path, len);
                    }
                    _ => {
                        let existed = oracle.live.remove(&path).is_some();
                        match st.handle_client_request(ClientRequest::Delete {
                            path: path.clone(),
                        }) {
                            ClientResponse::Deleted { existed: got } => {
                                assert_eq!(got, existed, "delete {path} disagreed");
                            }
                            other => panic!("delete {path}: {other:?}"),
                        }
                        if existed {
                            oracle.dead.push(path);
                        }
                    }
                }
            }
            oracle.dead.sort();
            oracle.dead.dedup();
            oracle.dead.retain(|p| !oracle.live.contains_key(p));
            (vol, oracle)
        }));
    }

    // The rival: cross-shard renames over its own private volumes plus
    // full root listings, concurrent with everything above.
    let renamer = {
        let st = Arc::clone(&st);
        let stop = Arc::clone(&stop_renamer);
        std::thread::spawn(move || {
            let client = register_client(&st);
            let mut at = "/renames-a/ball.bin".to_string();
            write_file(&st, client, &at, 77);
            let mut hops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let next = if at.starts_with("/renames-a") {
                    format!("/renames-b/ball{}.bin", hops)
                } else {
                    format!("/renames-a/ball{}.bin", hops)
                };
                match st.handle_client_request(ClientRequest::Rename {
                    src: at.clone(),
                    dst: next.clone(),
                }) {
                    ClientResponse::Renamed => at = next,
                    other => panic!("rename {at} -> {next}: {other:?}"),
                }
                hops += 1;
                match st.handle_client_request(ClientRequest::List { path: "/".into() }) {
                    ClientResponse::Listing { entries } => {
                        assert!(!entries.is_empty(), "root listing went empty mid-run");
                    }
                    other => panic!("list /: {other:?}"),
                }
            }
            (at, hops)
        })
    };

    barrier.wait();
    let mut oracles = Vec::new();
    for h in handles {
        oracles.push(h.join().expect("hammer worker panicked"));
    }
    stop_renamer.store(true, Ordering::Relaxed);
    let (ball_path, hops) = renamer.join().expect("renamer panicked");
    assert!(
        started.elapsed() < deadline,
        "hammer took {:?} — shard locking is wedging",
        started.elapsed()
    );
    assert!(hops > 0, "renamer never completed a rename");

    // Serially-replayed oracle vs the live namespace.
    let client = register_client(&st);
    for (vol, oracle) in &oracles {
        for (path, len) in &oracle.live {
            match st.handle_client_request(ClientRequest::GetFileInfo { path: path.clone() }) {
                ClientResponse::FileInfo(Some(info)) => {
                    assert!(info.complete, "{path} not complete");
                    assert_eq!(info.len, *len, "{path} length drifted");
                }
                other => panic!("oracle says {path} lives: {other:?}"),
            }
            match st.handle_client_request(ClientRequest::GetBlockLocations {
                client,
                path: path.clone(),
            }) {
                ClientResponse::BlockLocations { blocks } => {
                    assert_eq!(blocks.len(), 1, "{path} block count");
                    assert_eq!(blocks[0].targets.len(), 3, "{path} lost replicas");
                }
                other => panic!("locations {path}: {other:?}"),
            }
        }
        for path in &oracle.dead {
            match st.handle_client_request(ClientRequest::GetFileInfo { path: path.clone() }) {
                ClientResponse::FileInfo(None) => {}
                other => panic!("oracle says {path} ({vol}) is dead: {other:?}"),
            }
        }
    }
    // The renamer's ball survived wherever it last landed, blocks intact.
    match st.handle_client_request(ClientRequest::GetFileInfo { path: ball_path.clone() }) {
        ClientResponse::FileInfo(Some(info)) => {
            assert!(info.complete);
            assert_eq!(info.len, 77);
        }
        other => panic!("renamed file lost: {other:?}"),
    }

    // Root listing reflects every hammer volume (merged across shards).
    match st.handle_client_request(ClientRequest::List { path: "/".into() }) {
        ClientResponse::Listing { entries } => {
            for (vol, _) in &oracles {
                assert!(
                    entries.iter().any(|e| e.path == *vol),
                    "volume {vol} missing from merged root listing"
                );
            }
        }
        other => panic!("list /: {other:?}"),
    }

    // Cross-check the block map: cluster totals equal the oracle's.
    let live_files: usize = oracles.iter().map(|(_, o)| o.live.len()).sum::<usize>() + 1;
    let report = st.cluster_report();
    assert_eq!(report.blocks, live_files, "block map leaked or lost records");
}

/// The emulator run with `namenode_shards = 1` and `= 8` must produce
/// identical structural digests (payloads, commits, widths, FNFA and
/// read counts — everything not timing-derived), and clear the
/// same-engine tolerance bands on the timing-derived rest. The DES
/// mirror must agree *bit-for-bit*, since virtual time is exact.
#[test]
fn shard_count_does_not_change_conformance_digests() {
    fn emulator_digest(shards: usize) -> TraceDigest {
        let mut spec = ClusterSpec::homogeneous(InstanceType::Medium);
        spec.cross_rack_throttle = Some(Bandwidth::mbps(300.0));
        spec.link_latency = SimDuration::from_micros(50);
        let mut config = DfsConfig::test_scale();
        config.disk_bandwidth = Bandwidth::unlimited();
        config.namenode_shards = shards;
        let sink = RingBufferSink::new(262_144);
        let obs = Obs::new(sink.clone());
        let cluster = MiniCluster::start_with_obs(&spec, config, 0xC0F0, obs).unwrap();
        let client = cluster.client().unwrap();
        let data = random_data(0xC0F0, 2 * 1024 * 1024);
        client.put("/conformance/a.bin", &data, WriteMode::Smarth).unwrap();
        let got = client.get("/conformance/a.bin").unwrap();
        assert_eq!(got, data);
        cluster.shutdown();
        TraceDigest::from_report(&TraceAssembler::assemble(&sink.snapshot()))
    }

    fn sim_digest(shards: usize) -> TraceDigest {
        let mut spec = ClusterSpec::homogeneous(InstanceType::Medium);
        spec.cross_rack_throttle = Some(Bandwidth::mbps(300.0));
        spec.link_latency = SimDuration::from_micros(50);
        let mut config = DfsConfig::test_scale();
        config.disk_bandwidth = Bandwidth::unlimited();
        config.namenode_shards = shards;
        let sink = RingBufferSink::new(262_144);
        let obs = Obs::new(sink.clone());
        let mut scenario = SimScenario::new(
            spec,
            config,
            WriteMode::Smarth,
            ByteSize::bytes(2 * 1024 * 1024),
        );
        scenario.seed = 0xC0F0;
        scenario.warmup_uploads = 0;
        scenario.read_back = true;
        simulate_upload_with_obs(&scenario, obs);
        TraceDigest::from_report(&TraceAssembler::assemble(&sink.snapshot()))
    }

    let (em1, em8) = (emulator_digest(1), emulator_digest(8));
    // Structural invariance: same blocks, payloads, widths, commits,
    // recoveries and read admission, in the same upload order.
    assert_eq!(em1.blocks.len(), em8.blocks.len());
    for (a, b) in em1.blocks.iter().zip(&em8.blocks) {
        assert_eq!((a.index, a.bytes, a.committed, a.targets), (b.index, b.bytes, b.committed, b.targets));
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!((a.reads, a.read_stripes, a.read_bytes), (b.reads, b.read_stripes, b.read_bytes));
    }
    assert_eq!(em1.fnfa_count, em8.fnfa_count);
    // Timing-derived metrics clear the tight same-engine bands.
    let verdict = diff_digests("shards-1-vs-8", &em1, &em8, ToleranceBands::same_engine());
    assert!(
        verdict.pass,
        "same-engine digest drift across shard counts: {:?}",
        verdict.failures()
    );

    // The DES namenode mirror: virtual time is exact, so the digests
    // must be equal outright.
    assert_eq!(sim_digest(1), sim_digest(8), "DES digest changed with shard count");
}

/// The slow-tenant proof: pin one volume's shard busy and hammer the
/// rest of the namespace. At 8 shards the hammer keeps its throughput
/// (only 1/8th of volumes stall); at 1 shard the same pin freezes all
/// metadata traffic. Requires >= 2x aggregate op throughput — honest on
/// a single-core host, because the win comes from lock isolation, not
/// parallel speedup.
#[test]
fn pinned_shard_halves_nothing_but_its_own_volume() {
    fn hammer_ops(shards: usize, window: Duration) -> u64 {
        const THREADS: usize = 4;
        let st = state_with_shards(shards, 9);
        let pinned_path = "/pinned/f.bin";
        let ready = Arc::new(Barrier::new(2));
        let done = Arc::new(AtomicBool::new(false));
        let pin = {
            let st = Arc::clone(&st);
            let ready = Arc::clone(&ready);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                st.with_shard_locked(pinned_path, || {
                    ready.wait();
                    while !done.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                });
            })
        };
        ready.wait(); // pin is holding the shard now

        let ops = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::new();
        for w in 0..THREADS {
            let st = Arc::clone(&st);
            let ops = Arc::clone(&ops);
            let done = Arc::clone(&done);
            workers.push(std::thread::spawn(move || {
                let client = register_client(&st);
                // Volumes chosen to land on shards *other* than the
                // pinned one whenever more than one shard exists.
                let vol: String = (0u32..)
                    .map(|i| format!("/w{w}v{i}"))
                    .find(|v| st.shard_count() == 1 || st.shard_of(v) != st.shard_of(pinned_path))
                    .unwrap();
                let mut n = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let path = format!("{vol}/f{n}");
                    match st.handle_client_request(ClientRequest::Create {
                        client,
                        path,
                        replication: 3,
                        block_size: 1 << 20,
                        overwrite: false,
                        mode: WriteMode::Hdfs,
                    }) {
                        ClientResponse::Created { .. } => {
                            n += 1;
                            ops.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("create: {other:?}"),
                    }
                }
            }));
        }
        std::thread::sleep(window);
        done.store(true, Ordering::Relaxed);
        pin.join().unwrap();
        for w in workers {
            w.join().unwrap();
        }
        ops.load(Ordering::Relaxed)
    }

    let window = Duration::from_millis(400);
    let sharded = hammer_ops(8, window);
    let single = hammer_ops(1, window);
    assert!(
        sharded >= 2 * single.max(1),
        "sharding bought < 2x under a pinned shard: {sharded} ops at 8 shards vs {single} at 1"
    );
}
