//! Property-based tests over the discrete-event simulator: invariants
//! that must hold for *any* scenario in the supported parameter space,
//! checked against randomly drawn configurations.

use proptest::prelude::*;
use smarth::core::conformance::TraceDigest;
use smarth::core::obs::{Obs, RingBufferSink};
use smarth::core::trace::TraceAssembler;
use smarth::core::units::{Bandwidth, ByteSize};
use smarth::core::{InstanceType, WriteMode};
use smarth::sim::scenario::two_rack;
use smarth::sim::{simulate_upload, simulate_upload_with_obs};

fn instance_strategy() -> impl Strategy<Value = InstanceType> {
    prop_oneof![
        Just(InstanceType::Small),
        Just(InstanceType::Medium),
        Just(InstanceType::Large),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Throughput can never exceed the client NIC — bytes leave the
    /// client exactly once in both protocols.
    #[test]
    fn throughput_bounded_by_client_nic(
        inst in instance_strategy(),
        mib in 64u64..512,
        throttle in prop_oneof![Just(None), (30u32..200).prop_map(Some)],
        smarth_mode in any::<bool>(),
    ) {
        let mode = if smarth_mode { WriteMode::Smarth } else { WriteMode::Hdfs };
        let mut s = two_rack(
            inst,
            ByteSize::mib(mib),
            throttle.map(|m| Bandwidth::mbps(m as f64)),
            mode,
        );
        s.warmup_uploads = 0;
        let r = simulate_upload(&s);
        let nic = inst.network_bandwidth().as_mbps();
        prop_assert!(
            r.throughput_mbps <= nic * 1.02,
            "throughput {:.1} exceeds NIC {:.1}", r.throughput_mbps, nic
        );
        prop_assert!(r.upload_secs > 0.0);
        prop_assert_eq!(r.file_bytes, mib * 1024 * 1024);
    }

    /// HDFS throughput is additionally bounded by the cross-rack
    /// throttle (the pipeline always crosses racks with replication 3
    /// and the default rack rules), while SMARTH may exceed it.
    #[test]
    fn hdfs_bounded_by_cross_rack_throttle(
        mib in 128u64..512,
        throttle_mbps in 30u32..150,
    ) {
        let mut s = two_rack(
            InstanceType::Medium,
            ByteSize::mib(mib),
            Some(Bandwidth::mbps(throttle_mbps as f64)),
            WriteMode::Hdfs,
        );
        s.warmup_uploads = 0;
        let r = simulate_upload(&s);
        prop_assert!(
            r.throughput_mbps <= throttle_mbps as f64 * 1.05,
            "HDFS {:.1} Mbps exceeds throttle {throttle_mbps}",
            r.throughput_mbps
        );
    }

    /// Upload time is monotone non-decreasing in file size.
    #[test]
    fn monotone_in_file_size(
        mib in 64u64..256,
        extra in 32u64..256,
        smarth_mode in any::<bool>(),
    ) {
        let mode = if smarth_mode { WriteMode::Smarth } else { WriteMode::Hdfs };
        let bw = Some(Bandwidth::mbps(100.0));
        let mut small = two_rack(InstanceType::Small, ByteSize::mib(mib), bw, mode);
        small.warmup_uploads = 0;
        let mut large = two_rack(InstanceType::Small, ByteSize::mib(mib + extra), bw, mode);
        large.warmup_uploads = 0;
        let ts = simulate_upload(&small).upload_secs;
        let tl = simulate_upload(&large).upload_secs;
        prop_assert!(tl >= ts, "larger file faster: {tl} < {ts}");
    }

    /// SMARTH never loses to HDFS by more than protocol noise, for any
    /// throttle level, once warmed up.
    #[test]
    fn smarth_never_substantially_worse(
        throttle_mbps in 30u32..200,
    ) {
        let bw = Some(Bandwidth::mbps(throttle_mbps as f64));
        let h = simulate_upload(&two_rack(
            InstanceType::Small, ByteSize::mib(512), bw, WriteMode::Hdfs));
        let s = simulate_upload(&two_rack(
            InstanceType::Small, ByteSize::mib(512), bw, WriteMode::Smarth));
        prop_assert!(
            s.upload_secs <= h.upload_secs * 1.10,
            "SMARTH {:.1}s much worse than HDFS {:.1}s at {throttle_mbps} Mbps",
            s.upload_secs, h.upload_secs
        );
    }

    /// Determinism: equal scenarios (same seed) produce identical
    /// results; different seeds may differ but stay within the same
    /// physical envelope.
    #[test]
    fn seeded_determinism(seed in any::<u64>()) {
        let mut a = two_rack(
            InstanceType::Small,
            ByteSize::mib(256),
            Some(Bandwidth::mbps(80.0)),
            WriteMode::Smarth,
        );
        a.seed = seed;
        a.warmup_uploads = 0;
        let r1 = simulate_upload(&a);
        let r2 = simulate_upload(&a);
        prop_assert_eq!(r1.upload_secs, r2.upload_secs);
        prop_assert_eq!(r1.first_node_histogram, r2.first_node_histogram);
    }

    /// Determinism extends beyond aggregates to the full event
    /// structure: two runs of the same seeded scenario must produce
    /// byte-identical conformance digests (block order, sizes, FNFA gap
    /// ratios, hop residencies — everything the cross-engine comparator
    /// consumes).
    #[test]
    fn seeded_determinism_extends_to_trace_digests(
        seed in any::<u64>(),
        mib in 64u64..256,
    ) {
        let digest_json = || {
            let sink = RingBufferSink::new(65_536);
            let obs = Obs::new(sink.clone());
            let mut s = two_rack(
                InstanceType::Small,
                ByteSize::mib(mib),
                Some(Bandwidth::mbps(80.0)),
                WriteMode::Smarth,
            );
            s.seed = seed;
            s.warmup_uploads = 0;
            simulate_upload_with_obs(&s, obs);
            let report = TraceAssembler::assemble(&sink.snapshot());
            TraceDigest::from_report(&report).to_json().to_string_compact()
        };
        let a = digest_json();
        let b = digest_json();
        prop_assert_eq!(a, b, "same seed and spec must digest identically");
    }

    /// The pipeline cap (active datanodes / replication) holds for any
    /// replication factor.
    #[test]
    fn pipeline_cap_holds_for_any_replication(repl in 1usize..5) {
        let mut s = two_rack(
            InstanceType::Small,
            ByteSize::mib(512),
            Some(Bandwidth::mbps(50.0)),
            WriteMode::Smarth,
        );
        s.config.replication = repl;
        s.warmup_uploads = 0;
        let r = simulate_upload(&s);
        let cap = (9 / repl).max(1);
        prop_assert!(
            r.max_concurrent_pipelines <= cap,
            "{} pipelines exceeds cap {cap} at repl {repl}",
            r.max_concurrent_pipelines
        );
    }
}
