//! Tier-1 soak-harness tests: a deterministic replay profile whose
//! per-window recovery-cause counts must be bit-identical across runs
//! (including a mid-recovery second fault attributed separately as
//! `nested_failure`), and a short multi-client churn smoke with a
//! generated fault plan. The sustained profile is opt-in via
//! `SMARTH_SOAK_LONG=1` so tier-1 stays fast.

use smarth::cluster::soak::{self, SoakConfig};
use smarth::cluster::{random_data, replay, MiniCluster};
use smarth::core::obs::RecoveryCause;
use smarth::core::{ClusterSpec, DfsConfig, WriteMode};

fn slot(cause: RecoveryCause) -> usize {
    RecoveryCause::ALL
        .iter()
        .position(|c| *c == cause)
        .unwrap()
}

#[test]
fn deterministic_profile_replays_exactly() {
    // Two runs of the byte-triggered single-client profile must agree
    // window-by-window on recovery-cause counts: the whole fault plan —
    // a cable pull mid-block, then a double datanode kill mid-block —
    // fires at exact byte offsets, not wall-clock times.
    let a = soak::run(&SoakConfig::deterministic(71)).unwrap();
    let b = soak::run(&SoakConfig::deterministic(71)).unwrap();

    assert_eq!(a.violations, Vec::<String>::new(), "\n{}", a.render());
    assert_eq!(b.violations, Vec::<String>::new(), "\n{}", b.render());

    let causes = |r: &soak::SoakReport| -> Vec<[u64; 5]> {
        r.windows.iter().map(|w| w.recoveries).collect()
    };
    assert_eq!(
        causes(&a),
        causes(&b),
        "same seed, same fault plan, same per-window recovery-cause counts\nrun A:\n{}\nrun B:\n{}",
        a.render(),
        b.render()
    );
    assert_eq!(a.plan, b.plan);

    // The plan injects exactly one connection loss (the cable pull) and
    // one double kill whose second death lands *during* the recovery of
    // the first — so causes must be attributed distinctly: two
    // connection-lost recoveries plus one nested failure.
    assert_eq!(
        a.recoveries[slot(RecoveryCause::ConnectionLost)],
        2,
        "\n{}",
        a.render()
    );
    assert_eq!(
        a.recoveries[slot(RecoveryCause::NestedFailure)],
        1,
        "\n{}",
        a.render()
    );
    assert_eq!(a.recoveries[slot(RecoveryCause::AckTimeout)], 0);
    assert_eq!(a.recoveries[slot(RecoveryCause::NamenodeError)], 0);

    // Churn completed and every read-back matched.
    let w = &a.workers[0];
    assert_eq!(w.ops, 6);
    assert_eq!(w.integrity_failures, 0);
    assert_eq!(w.op_errors, 0, "errors: {:?}", w.errors);
    assert!(a.blocks_committed >= 6, "\n{}", a.render());
}

#[test]
fn multi_client_churn_smoke_holds_invariants() {
    let cfg = SoakConfig::smoke(29);
    let report = soak::run(&cfg).unwrap();

    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert!(
        report.blocks_committed > 0 && report.bytes_written > 0,
        "\n{}",
        report.render()
    );
    // All six clients made progress.
    assert_eq!(report.workers.len(), 6);
    assert!(report.workers.iter().all(|w| w.ops > 0));
    assert!(report.workers.iter().all(|w| w.integrity_failures == 0));
    // The generated plan is replayable: regenerating from the same seed
    // gives the same schedule, a different seed a different one.
    assert_eq!(
        report.plan,
        soak::FaultPlan::generate(29, cfg.clients, cfg.datanodes, 3_500, 4)
    );
    assert_ne!(
        report.plan,
        soak::FaultPlan::generate(30, cfg.clients, cfg.datanodes, 3_500, 4)
    );
    // The harness produced a report file via the figures plumbing's
    // results convention.
    let dir = std::env::temp_dir().join("smarth-soak-test");
    let path = report.save(&dir).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = smarth::core::json::parse(&text).unwrap();
    assert_eq!(parsed.get("seed").as_u64(), Some(29));
    assert!(text.contains("\"windows\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_heavy_smoke_exercises_striped_reads_under_faults() {
    // The read-dominant profile: ~65% of ops are full striped
    // read-backs, with the same fault plan as the write smoke — so
    // stalls and kills land on reads and must convert into source
    // failover, never into integrity failures.
    let cfg = SoakConfig::read_heavy(37);
    let report = soak::run(&cfg).unwrap();

    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert_eq!(report.config.op_mix, soak::OpMix::read_heavy());
    assert!(report.workers.iter().all(|w| w.ops > 0));
    assert!(report.workers.iter().all(|w| w.integrity_failures == 0));
    // The mix survives the report's JSON round trip (replayability).
    let back = SoakConfig::from_json(&report.config.to_json()).unwrap();
    assert_eq!(back.op_mix, cfg.op_mix);
}

#[test]
fn rack_partition_profile_replays_with_attributed_recoveries() {
    // The rack-partition profile severs rack-b twice mid-run: its
    // clients lose the namenode, its datanodes drop out of every live
    // pipeline, and both outages heal before heartbeat expiry. All
    // resulting recoveries must be attributable to the partition
    // windows (an unattributable recovery is a violation), and the
    // report's echoed config must replay cleanly — the saved JSON alone
    // reproduces the run.
    let cfg = SoakConfig::rack_partition(11);
    let report = soak::run(&cfg).unwrap();
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert!(report.workers.iter().all(|w| w.integrity_failures == 0));
    assert!(report.blocks_committed > 0, "\n{}", report.render());

    // Both injected partitions are in the echoed plan and survive the
    // JSON round trip (class attribution is unit-tested in the soak
    // module itself).
    let partitions = report
        .plan
        .events
        .iter()
        .filter(|e| matches!(e.kind, soak::FaultKind::RackPartition { .. }))
        .count();
    assert_eq!(partitions, 2, "plan lost its partition events");
    let back = SoakConfig::from_json(&report.config.to_json()).unwrap();
    assert_eq!(back.plan, cfg.plan);

    // Replay the saved report verbatim: wall-clock profiles skip the
    // window-count comparison, but the fresh run must hold the same
    // invariants under the same partition schedule.
    let outcome = replay::replay_json(&report.to_json()).unwrap();
    assert!(outcome.matches(), "\n{}", outcome.render());
    assert_eq!(
        outcome.report.violations,
        Vec::<String>::new(),
        "replayed run violated invariants:\n{}",
        outcome.report.render()
    );
    assert!(outcome.report.blocks_committed > 0);
}

#[test]
fn tiered_cluster_smoke_holds_invariants() {
    // The heterogeneous profile: Table I's instance mix with per-tier
    // disk caps on every datanode. Same churn and fault plan as the
    // homogeneous smoke — slow disks must surface as slower pipelines,
    // never as violations or integrity failures.
    let cfg = SoakConfig::tiered_smoke(41);
    assert!(cfg.tiered_disks);
    let report = soak::run(&cfg).unwrap();
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert!(report.workers.iter().all(|w| w.ops > 0));
    assert!(report.workers.iter().all(|w| w.integrity_failures == 0));
    let back = SoakConfig::from_json(&report.config.to_json()).unwrap();
    assert!(back.tiered_disks, "tiered_disks lost in the JSON round trip");
}

#[test]
fn speed_registry_converges_to_fast_tier_on_reads() {
    // On the tiered heterogeneous spec the small tier is slow end to
    // end (216 Mbps NIC vs 376). The reading client must NOT be the
    // bottleneck, so it runs on an unthrottled fabric host — then each
    // striped read samples every replica at the replica's own ceiling,
    // the speed heartbeat feeds those observations to the namenode, and
    // after a few rounds the registry's descending source order must
    // put a fast-tier (medium/large) datanode on top with every
    // small-tier record strictly below it.
    let spec = ClusterSpec::heterogeneous_tiered();
    let mut config = DfsConfig::test_scale();
    // Single-block files and no readahead: each read is one sustained
    // 3-stripe fetch, long enough to drain the token-bucket burst that
    // would otherwise mask the per-tier NIC caps at the 256 KiB scale.
    config.readahead_blocks = 0;
    config.block_size = smarth::core::units::ByteSize::mib(4);
    let cluster = MiniCluster::start(&spec, config, 0x7EAD).unwrap();
    cluster
        .fabric()
        .add_host("reader", "rack-a", smarth::core::units::Bandwidth::unlimited());
    let client = cluster.client_on("reader", "rack-a").unwrap();

    let mut datas = Vec::new();
    for i in 0..4u64 {
        let data = random_data(100 + i, 4 * 1024 * 1024);
        client
            .put(&format!("/tiers/f{i}.bin"), &data, WriteMode::Smarth)
            .unwrap();
        datas.push(data);
    }
    for _ in 0..5 {
        for (i, data) in datas.iter().enumerate() {
            let got = client.get(&format!("/tiers/f{i}.bin")).unwrap();
            assert_eq!(&got, data, "read-back mismatch on /tiers/f{i}.bin");
        }
        client.flush_speed_report().unwrap();
    }

    let records = cluster.namenode_state().speed_records(client.id());
    assert!(records.len() >= 4, "reads must leave speed records: {records:?}");
    let report = cluster.namenode_state().cluster_report();
    let tier_of = |id| {
        report
            .live_datanodes
            .iter()
            .find(|d| d.id == id)
            .map(|d| {
                d.host_name
                    .trim_end_matches(|c: char| c.is_ascii_digit())
                    .to_string()
            })
            .unwrap()
    };
    let (top_id, top_rate) = records
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert_ne!(
        tier_of(top_id),
        "small",
        "registry order tops out on the slow tier: {records:?}"
    );
    let mut small = Vec::new();
    let mut fast = Vec::new();
    for (id, rate) in &records {
        if tier_of(*id) == "small" {
            assert!(
                *rate < top_rate,
                "small-tier {id:?} at {rate:.0} B/s outranks the fast tier \
                 ({top_rate:.0} B/s): {records:?}"
            );
            small.push(*rate);
        } else {
            fast.push(*rate);
        }
    }
    // Both tiers must actually have been observed, and on average the
    // fast tier must rank above the slow one.
    assert!(!small.is_empty() && !fast.is_empty(), "both tiers sampled: {records:?}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&small) < mean(&fast),
        "small tier mean {:.0} B/s >= fast tier mean {:.0} B/s: {records:?}",
        mean(&small),
        mean(&fast)
    );
    cluster.shutdown();
}

#[test]
fn sustained_profile_long_soak() {
    // Opt-in long profile: `SMARTH_SOAK_LONG=1 cargo test --test soak`.
    if std::env::var("SMARTH_SOAK_LONG").map(|v| v == "1") != Ok(true) {
        eprintln!("skipping long soak (set SMARTH_SOAK_LONG=1 to run)");
        return;
    }
    let secs = std::env::var("SMARTH_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let report = soak::run(&SoakConfig::sustained(24, secs, 3)).unwrap();
    println!("{}", report.render());
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert!(report.blocks_committed > 0);
    report
        .save(std::path::Path::new("results"))
        .expect("report written");
}
