//! Tier-1 soak-harness tests: a deterministic replay profile whose
//! per-window recovery-cause counts must be bit-identical across runs
//! (including a mid-recovery second fault attributed separately as
//! `nested_failure`), and a short multi-client churn smoke with a
//! generated fault plan. The sustained profile is opt-in via
//! `SMARTH_SOAK_LONG=1` so tier-1 stays fast.

use smarth::cluster::soak::{self, SoakConfig};
use smarth::core::obs::RecoveryCause;

fn slot(cause: RecoveryCause) -> usize {
    RecoveryCause::ALL
        .iter()
        .position(|c| *c == cause)
        .unwrap()
}

#[test]
fn deterministic_profile_replays_exactly() {
    // Two runs of the byte-triggered single-client profile must agree
    // window-by-window on recovery-cause counts: the whole fault plan —
    // a cable pull mid-block, then a double datanode kill mid-block —
    // fires at exact byte offsets, not wall-clock times.
    let a = soak::run(&SoakConfig::deterministic(71)).unwrap();
    let b = soak::run(&SoakConfig::deterministic(71)).unwrap();

    assert_eq!(a.violations, Vec::<String>::new(), "\n{}", a.render());
    assert_eq!(b.violations, Vec::<String>::new(), "\n{}", b.render());

    let causes = |r: &soak::SoakReport| -> Vec<[u64; 5]> {
        r.windows.iter().map(|w| w.recoveries).collect()
    };
    assert_eq!(
        causes(&a),
        causes(&b),
        "same seed, same fault plan, same per-window recovery-cause counts\nrun A:\n{}\nrun B:\n{}",
        a.render(),
        b.render()
    );
    assert_eq!(a.plan, b.plan);

    // The plan injects exactly one connection loss (the cable pull) and
    // one double kill whose second death lands *during* the recovery of
    // the first — so causes must be attributed distinctly: two
    // connection-lost recoveries plus one nested failure.
    assert_eq!(
        a.recoveries[slot(RecoveryCause::ConnectionLost)],
        2,
        "\n{}",
        a.render()
    );
    assert_eq!(
        a.recoveries[slot(RecoveryCause::NestedFailure)],
        1,
        "\n{}",
        a.render()
    );
    assert_eq!(a.recoveries[slot(RecoveryCause::AckTimeout)], 0);
    assert_eq!(a.recoveries[slot(RecoveryCause::NamenodeError)], 0);

    // Churn completed and every read-back matched.
    let w = &a.workers[0];
    assert_eq!(w.ops, 6);
    assert_eq!(w.integrity_failures, 0);
    assert_eq!(w.op_errors, 0, "errors: {:?}", w.errors);
    assert!(a.blocks_committed >= 6, "\n{}", a.render());
}

#[test]
fn multi_client_churn_smoke_holds_invariants() {
    let cfg = SoakConfig::smoke(29);
    let report = soak::run(&cfg).unwrap();

    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert!(
        report.blocks_committed > 0 && report.bytes_written > 0,
        "\n{}",
        report.render()
    );
    // All six clients made progress.
    assert_eq!(report.workers.len(), 6);
    assert!(report.workers.iter().all(|w| w.ops > 0));
    assert!(report.workers.iter().all(|w| w.integrity_failures == 0));
    // The generated plan is replayable: regenerating from the same seed
    // gives the same schedule, a different seed a different one.
    assert_eq!(
        report.plan,
        soak::FaultPlan::generate(29, cfg.clients, cfg.datanodes, 3_500, 4)
    );
    assert_ne!(
        report.plan,
        soak::FaultPlan::generate(30, cfg.clients, cfg.datanodes, 3_500, 4)
    );
    // The harness produced a report file via the figures plumbing's
    // results convention.
    let dir = std::env::temp_dir().join("smarth-soak-test");
    let path = report.save(&dir).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = smarth::core::json::parse(&text).unwrap();
    assert_eq!(parsed.get("seed").as_u64(), Some(29));
    assert!(text.contains("\"windows\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_heavy_smoke_exercises_striped_reads_under_faults() {
    // The read-dominant profile: ~65% of ops are full striped
    // read-backs, with the same fault plan as the write smoke — so
    // stalls and kills land on reads and must convert into source
    // failover, never into integrity failures.
    let cfg = SoakConfig::read_heavy(37);
    let report = soak::run(&cfg).unwrap();

    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert_eq!(report.config.op_mix, soak::OpMix::read_heavy());
    assert!(report.workers.iter().all(|w| w.ops > 0));
    assert!(report.workers.iter().all(|w| w.integrity_failures == 0));
    // The mix survives the report's JSON round trip (replayability).
    let back = SoakConfig::from_json(&report.config.to_json()).unwrap();
    assert_eq!(back.op_mix, cfg.op_mix);
}

#[test]
fn sustained_profile_long_soak() {
    // Opt-in long profile: `SMARTH_SOAK_LONG=1 cargo test --test soak`.
    if std::env::var("SMARTH_SOAK_LONG").map(|v| v == "1") != Ok(true) {
        eprintln!("skipping long soak (set SMARTH_SOAK_LONG=1 to run)");
        return;
    }
    let secs = std::env::var("SMARTH_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let report = soak::run(&SoakConfig::sustained(24, secs, 3)).unwrap();
    println!("{}", report.render());
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert!(report.blocks_committed > 0);
    report
        .save(std::path::Path::new("results"))
        .expect("report written");
}
