//! Integration tests for the staged datanode write path: the bounded
//! receive→flush staging queue and its `datanode_buffered_bytes`
//! accounting under a disk that cannot keep up with the network.

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::units::{Bandwidth, ByteSize};
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};

fn small_spec(datanodes: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::homogeneous(InstanceType::Large);
    spec.hosts.retain(|h| {
        h.role != smarth::core::HostRole::DataNode
            || h.name
                .strip_prefix("dn")
                .and_then(|s| s.parse::<usize>().ok())
                .is_some_and(|i| i < datanodes)
    });
    spec.link_latency = SimDuration::ZERO;
    spec
}

#[test]
fn stalled_disk_plateaus_staging_at_configured_buffer() {
    // The receiver drains the socket into a staging queue sized from
    // `datanode_client_buffer`; the flusher drains it at disk speed.
    // With the disk far slower than the NIC the queue must fill to the
    // configured bound — and no further: the bound is what turns a slow
    // disk into socket backpressure instead of unbounded memory.
    const BUFFER: u64 = 64 * 1024;
    const PACKET: u64 = 16 * 1024;

    let mut config = DfsConfig::test_scale();
    // Single-hop pipelines so exactly one staging queue is live and the
    // global gauge reads a single node's occupancy.
    config.replication = 1;
    config.datanode_client_buffer = ByteSize::bytes(BUFFER);
    // ~250 KB/s against an effectively unthrottled NIC: the 256 KiB
    // block outlasts the 64 KiB disk-token burst, so the flusher stalls
    // while the receiver keeps staging.
    config.disk_bandwidth = Bandwidth::mbps(2.0);

    let cluster = MiniCluster::start(&small_spec(2), config, 11).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(5, 256 * 1024); // exactly one block
    client.put("/wp/plateau.bin", &data, WriteMode::Hdfs).unwrap();

    let m = cluster.obs().metrics();
    let hw = m.datanode_buffered_bytes.high_water();
    assert!(
        hw >= BUFFER - PACKET,
        "staging never built up to the bound: high water {hw} B"
    );
    // Add/sub bookkeeping straddles the channel send, so a reader can
    // transiently observe up to two extra in-flight packets.
    assert!(
        hw <= BUFFER + 2 * PACKET,
        "staging exceeded the configured buffer: high water {hw} B > {BUFFER} B"
    );
    assert_eq!(
        m.datanode_buffered_bytes.get(),
        0,
        "staging must drain to zero after the upload"
    );
    assert_eq!(client.get("/wp/plateau.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn fast_disk_keeps_staging_shallow() {
    // Control experiment: with the disk faster than the NIC the staging
    // queue never approaches its bound — the flusher keeps up.
    let mut config = DfsConfig::test_scale();
    config.replication = 1;
    config.datanode_client_buffer = ByteSize::bytes(256 * 1024);
    config.disk_bandwidth = Bandwidth::unlimited();

    let cluster = MiniCluster::start(&small_spec(2), config, 13).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(7, 256 * 1024);
    client.put("/wp/shallow.bin", &data, WriteMode::Hdfs).unwrap();

    let m = cluster.obs().metrics();
    let hw = m.datanode_buffered_bytes.high_water();
    assert!(
        hw < 256 * 1024,
        "unlimited disk should never fill the staging bound: high water {hw} B"
    );
    assert_eq!(m.datanode_buffered_bytes.get(), 0);
    cluster.shutdown();
}
