//! Cross-engine conformance: the threaded emulator and the
//! discrete-event simulator run the same workload on the same
//! [`ClusterSpec`], and the dimensionless digests of their trace
//! streams must agree within the tolerance bands — block-by-block
//! payloads exactly, FNFA counts, pipeline overlap, and per-hop
//! replica residency approximately. Also exercises the other half of
//! the harness: replaying a saved soak report's echoed fault plan must
//! reproduce its per-window recovery-cause counts exactly.

use smarth::cluster::{random_data, replay, soak, MiniCluster, SoakConfig};
use smarth::core::conformance::{diff_digests, diff_reports, ToleranceBands, TraceDigest};
use smarth::core::obs::{Obs, RingBufferSink};
use smarth::core::trace::{TraceAssembler, TraceReport};
use smarth::core::units::{Bandwidth, ByteSize};
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use smarth::sim::{simulate_upload_with_obs, SimScenario};

/// One spec + config + upload size, run through BOTH engines. The
/// emulator drives a real [`MiniCluster`] with a single client `put`;
/// the simulator replays the identical scenario in virtual time. Both
/// event streams are assembled the same way.
fn paired_reports(
    instance: InstanceType,
    upload_bytes: usize,
    seed: u64,
) -> (TraceReport, TraceReport) {
    paired_reports_with_read_back(instance, upload_bytes, seed, false)
}

/// [`paired_reports`], optionally reading the file back on both engines
/// (striped `get` on the emulator, the DES read mirror on the
/// simulator) so the digests carry read admission too.
fn paired_reports_with_read_back(
    instance: InstanceType,
    upload_bytes: usize,
    seed: u64,
    read_back: bool,
) -> (TraceReport, TraceReport) {
    let mut spec = ClusterSpec::homogeneous(instance);
    // A cross-rack throttle slows the pipeline drain relative to the
    // client, so FNFA-driven overlap is robust in both engines.
    spec.cross_rack_throttle = Some(Bandwidth::mbps(300.0));
    spec.link_latency = SimDuration::from_micros(50);
    let mut config = DfsConfig::test_scale();
    config.disk_bandwidth = Bandwidth::unlimited();

    // Engine A: the threaded emulator, real microseconds.
    let sink = RingBufferSink::new(262_144);
    let obs = Obs::new(sink.clone());
    let cluster = MiniCluster::start_with_obs(&spec, config.clone(), seed, obs).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(seed, upload_bytes);
    client.put("/conformance/a.bin", &data, WriteMode::Smarth).unwrap();
    if read_back {
        let got = client.get("/conformance/a.bin").unwrap();
        assert_eq!(got, data, "striped read must return the written bytes");
    }
    cluster.shutdown();
    let emulator = TraceAssembler::assemble(&sink.snapshot());

    // Engine B: the discrete-event simulator, virtual microseconds.
    let sink = RingBufferSink::new(262_144);
    let obs = Obs::new(sink.clone());
    let mut scenario = SimScenario::new(
        spec,
        config,
        WriteMode::Smarth,
        ByteSize::bytes(upload_bytes as u64),
    );
    scenario.seed = seed;
    scenario.warmup_uploads = 0; // the emulator client above is cold too
    scenario.read_back = read_back;
    simulate_upload_with_obs(&scenario, obs);
    let sim = TraceAssembler::assemble(&sink.snapshot());

    assert!(!emulator.virtual_time, "emulator must report real time");
    assert!(sim.virtual_time, "simulator must report virtual time");
    (emulator, sim)
}

#[test]
fn engines_conform_on_cluster_presets() {
    // (preset name, instance, upload size): a handful of blocks up to a
    // few dozen at the 256 KiB test scale.
    let presets = [
        ("small", InstanceType::Small, 1024 * 1024),
        ("medium", InstanceType::Medium, 2 * 1024 * 1024 + 512 * 1024),
        ("large", InstanceType::Large, 5 * 1024 * 1024),
    ];
    for (name, instance, bytes) in presets {
        let (emulator, sim) = paired_reports(instance, bytes, 0xC0F0 + bytes as u64);
        let verdict = diff_reports(
            &format!("conformance-{name}"),
            &emulator,
            &sim,
            ToleranceBands::default(),
        );
        assert!(
            verdict.pass,
            "{name}: engines diverged beyond tolerance\n{}",
            verdict.render()
        );
    }
}

#[test]
fn engines_conform_on_reads() {
    // The read preset: put + full read-back on both engines. Beyond the
    // write-path bands, every paired block must show identical read
    // admission — same span count, same announced stripes, same bytes.
    let (emulator, sim) =
        paired_reports_with_read_back(InstanceType::Medium, 2 * 1024 * 1024, 0xBEAD, true);
    let a = TraceDigest::from_report(&emulator);
    let b = TraceDigest::from_report(&sim);
    assert!(
        a.blocks.iter().all(|x| x.reads == 1 && x.read_stripes >= 1),
        "emulator digest must carry one read span per block"
    );
    assert!(
        a.blocks.iter().all(|x| x.read_bytes == x.bytes),
        "each block must be read back in full"
    );
    let verdict = diff_digests("conformance-read", &a, &b, ToleranceBands::default());
    assert!(
        verdict.pass,
        "engines diverged beyond tolerance on the read preset\n{}",
        verdict.render()
    );
}

#[test]
fn perturbed_report_fails_the_bands() {
    let (emulator, sim) = paired_reports(InstanceType::Large, 1024 * 1024, 99);
    let a = TraceDigest::from_report(&emulator);
    let mut b = TraceDigest::from_report(&sim);
    let honest = diff_digests("perturb-baseline", &a, &b, ToleranceBands::default());
    assert!(honest.pass, "baseline must pass:\n{}", honest.render());

    // Corrupt one block's payload: positional pairing must flag it as a
    // structural mismatch, not absorb it into a ratio band.
    b.blocks[0].bytes *= 2;
    let verdict = diff_digests("perturb-bytes", &a, &b, ToleranceBands::default());
    assert!(!verdict.pass, "doubled payload must fail");
    assert!(
        verdict.failures().iter().any(|m| m.name == "block_size_mismatches"),
        "failure must name the perturbed metric:\n{}",
        verdict.render()
    );

    // Drop a committed block entirely: the exact committed-count gate
    // must fail.
    b.blocks[0].bytes /= 2; // undo
    b.blocks.pop();
    let verdict = diff_digests("perturb-missing", &a, &b, ToleranceBands::default());
    assert!(!verdict.pass, "missing block must fail");
}

#[test]
fn replay_reproduces_recovery_schedule_exactly() {
    // The deterministic soak profile: op-budgeted, single window, both
    // faults at exact byte offsets mid-block.
    let cfg = SoakConfig::deterministic(4242);
    let report = soak::run(&cfg).unwrap();
    assert!(
        report.violations.is_empty(),
        "reference run must be clean: {:?}",
        report.violations
    );
    assert!(
        report.recoveries_total() >= 2,
        "both injected faults must recover something"
    );

    // Round-trip the report through its JSON form — exactly what the
    // shell's `replay <file>` does after reading the saved file — and
    // re-run the echoed config verbatim.
    let outcome = replay::replay_json(&report.to_json()).unwrap();
    assert!(outcome.comparable, "op-budgeted profiles compare windows");
    assert!(
        outcome.matches(),
        "replay diverged from the saved schedule:\n{}",
        outcome.render()
    );
    assert_eq!(
        outcome.saved.len(),
        outcome.replayed.len(),
        "window structure must reproduce"
    );
}
