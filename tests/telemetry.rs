//! Integration tests for the live telemetry plane
//! (`smarth_core::obs::telemetry`): a throttled writer observed through
//! a wall-clock `Sampler` whose counter-rate series reconstruct the
//! upload, a deliberately starved SLO that must fail with the violating
//! windows identified, and a structural comparison of the emulator's
//! and the simulator's series on the same two-rack preset.

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::obs::telemetry::{
    MetricKind, Sampler, SloKind, SloObjective, SloTracker, TelemetrySeries,
};
use smarth::core::obs::{Metrics, Obs, RingBufferSink};
use smarth::core::units::{Bandwidth, ByteSize};
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use smarth::sim::scenario::two_rack;
use smarth::sim::simulate_upload_with_telemetry;
use std::sync::Arc;
use std::time::Duration;

const UPLOAD_BYTES: usize = 2_500_000; // 10 blocks at the 256 KiB test scale
const NIC_MBPS: f64 = 40.0;

fn fast_config() -> DfsConfig {
    let mut c = DfsConfig::test_scale();
    c.disk_bandwidth = Bandwidth::unlimited();
    c.heartbeat_interval = SimDuration::from_millis(25);
    c
}

/// Uploads one file on a cluster whose client NIC is shaped to
/// `nic_mbps`, sampling the shared metrics registry from the test
/// thread every 10 ms — the same wall-clock capture the datanode
/// heartbeat loop performs — and returns the derived series plus the
/// registry it was read from.
fn sampled_upload(seed: u64, nic_mbps: f64) -> (TelemetrySeries, Arc<Metrics>) {
    let obs = Obs::new(RingBufferSink::new(4096));
    let metrics = Arc::clone(obs.metrics());
    let sampler = Sampler::new(metrics.clone(), 4096);

    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = MiniCluster::start_with_obs(&spec, fast_config(), seed, obs).unwrap();
    let client_host = cluster.spec().client_host().name.clone();
    cluster
        .throttle_host(&client_host, Some(Bandwidth::mbps(nic_mbps)))
        .unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(seed, UPLOAD_BYTES);

    sampler.sample_at(Obs::now_us());
    let writer = std::thread::spawn(move || {
        client
            .put("/telemetry/file.bin", &data, WriteMode::Smarth)
            .unwrap()
    });
    while !writer.is_finished() {
        std::thread::sleep(Duration::from_millis(10));
        sampler.sample_at(Obs::now_us());
    }
    let report = writer.join().unwrap();
    assert_eq!(report.stats.bytes_written, UPLOAD_BYTES as u64);
    sampler.sample_at(Obs::now_us());
    cluster.shutdown();

    (sampler.series(), metrics)
}

#[test]
fn counter_rates_reconstruct_a_throttled_writers_throughput() {
    let (series, metrics) = sampled_upload(31, NIC_MBPS);
    let bw = series.get("bytes_written").expect("bytes_written series");
    assert!(
        series.frames_len() >= 5,
        "a shaped upload spans several 10 ms sampling windows, got {} frames",
        series.frames_len()
    );

    // Integrating rate over the window durations must reproduce the
    // counter's total to within float noise.
    let mut integrated = 0.0;
    for (i, rate) in bw.rates.iter().enumerate() {
        let dt_s = (bw.points[i + 1].t_us - bw.points[i].t_us) as f64 / 1e6;
        integrated += rate.value * dt_s;
    }
    let total = metrics.bytes_written.get() as f64;
    assert_eq!(total, UPLOAD_BYTES as f64);
    assert!(
        (integrated - total).abs() / total < 0.01,
        "sum(rate x dt) = {integrated:.0} must reconstruct the {total:.0}-byte upload"
    );

    // The mean rate over the active region must reflect the shaped NIC:
    // far below memory speed, not implausibly above the throttle. The
    // client stages packets ahead of the wire, so individual windows
    // may burst; the band is deliberately loose.
    let (lo, hi) = bw.active_span().expect("the upload moved bytes");
    let active_s = (bw.rates[hi].t_us - bw.points[lo].t_us) as f64 / 1e6;
    let active_bytes: f64 = (lo..=hi)
        .map(|i| bw.rates[i].value * (bw.points[i + 1].t_us - bw.points[i].t_us) as f64 / 1e6)
        .sum();
    let mean_mbps = active_bytes * 8.0 / 1e6 / active_s;
    assert!(
        mean_mbps <= NIC_MBPS * 2.0,
        "mean {mean_mbps:.1} Mbps cannot meaningfully exceed the {NIC_MBPS} Mbps NIC"
    );
    assert!(
        mean_mbps >= NIC_MBPS * 0.05,
        "mean {mean_mbps:.1} Mbps is implausibly slow for a {NIC_MBPS} Mbps NIC"
    );
}

#[test]
fn starved_slo_fails_with_the_violating_windows_identified() {
    let (series, _metrics) = sampled_upload(32, NIC_MBPS);

    // A sustained-throughput floor far above the shaped NIC: 10 Gbit/s
    // against a 40 Mbit/s link. Every active window must fall short.
    let floor_mbps = 10_000.0;
    let tracker = SloTracker::new(vec![SloObjective {
        name: "impossible_floor".into(),
        metric: "bytes_written".into(),
        kind: SloKind::ThroughputFloorMbps,
        target: floor_mbps,
    }]);
    let verdict = tracker.evaluate(&series);

    assert!(!verdict.pass, "a floor above the NIC cannot be met");
    let obj = &verdict.objectives[0];
    assert!(!obj.pass);
    assert_eq!(obj.objective.metric, "bytes_written");
    assert!(
        obj.observed < floor_mbps,
        "worst observed rate {:.1} Mbps must be under the floor",
        obj.observed
    );
    assert!(
        !obj.violations.is_empty(),
        "the verdict must identify the violating windows"
    );
    let bw = series.get("bytes_written").unwrap();
    for w in &obj.violations {
        assert!(w.index < bw.rates.len());
        assert!(w.from_us < w.to_us, "a violation window spans real time");
        assert_eq!(w.from_us, bw.points[w.index].t_us);
        assert_eq!(w.to_us, bw.rates[w.index].t_us);
        assert!(w.observed < floor_mbps);
    }
    // Every active window is starved, so all of them are reported.
    let (lo, hi) = bw.active_span().unwrap();
    assert_eq!(obj.violations.len(), hi - lo + 1);

    // The standard objectives are lenient by design: the same capture
    // passes them, so soak verdicts only flag genuine pathology.
    assert!(SloTracker::standard().evaluate(&series).pass);
}

#[test]
fn emulator_and_des_samplers_produce_structurally_comparable_series() {
    let (emu, _metrics) = sampled_upload(33, NIC_MBPS);

    let obs = Obs::new(RingBufferSink::new(65_536));
    let sampler = Sampler::new(Arc::clone(obs.metrics()), 4096);
    let file_size = ByteSize::mib(512);
    let scenario = two_rack(
        InstanceType::Small,
        file_size,
        Some(Bandwidth::mbps(60.0)),
        WriteMode::Smarth,
    );
    // 100 ms of virtual time per frame, against the emulator's 10 ms of
    // wall time — cadences differ, the derived structure must not.
    let result = simulate_upload_with_telemetry(&scenario, obs, sampler.clone(), 100_000);
    let des = sampler.series();

    assert!(emu.frames_len() >= 2, "emulator capture must have frames");
    assert!(des.frames_len() >= 2, "DES capture must have frames");

    // Same descriptor table, same order, same kinds.
    let shape = |s: &TelemetrySeries| -> Vec<(String, MetricKind)> {
        s.series.iter().map(|m| (m.name.clone(), m.kind)).collect()
    };
    assert_eq!(shape(&emu), shape(&des));

    // Every column of a capture is derived from the same frames.
    for s in &emu.series {
        assert_eq!(s.points.len(), emu.frames_len());
    }
    for s in &des.series {
        assert_eq!(s.points.len(), des.frames_len());
    }

    for s in emu.series.iter().chain(des.series.iter()) {
        assert!(
            s.points.windows(2).all(|w| w[0].t_us < w[1].t_us),
            "{}: timestamps must be strictly increasing",
            s.name
        );
        if s.kind == MetricKind::Counter {
            assert!(
                s.points.windows(2).all(|w| w[0].value <= w[1].value),
                "{}: counters must be monotone",
                s.name
            );
            assert_eq!(s.rates.len(), s.points.len() - 1);
            assert!(s.rates.iter().all(|r| r.value >= 0.0));
        } else {
            assert!(s.rates.is_empty(), "{}: only counters derive rates", s.name);
        }
    }

    // Both engines saw the upload in their bytes_written column.
    let emu_bytes = emu.get("bytes_written").unwrap().points.last().unwrap().value;
    assert_eq!(emu_bytes, UPLOAD_BYTES as f64);
    let des_bytes = des.get("bytes_written").unwrap().points.last().unwrap().value;
    assert_eq!(des_bytes, file_size.as_u64() as f64);

    // The DES capture is stamped in virtual time: it starts at the
    // virtual epoch and ends no later than the measured upload.
    let des_bw = des.get("bytes_written").unwrap();
    assert_eq!(des_bw.points.first().unwrap().t_us, 0);
    let last_us = des_bw.points.last().unwrap().t_us;
    assert!(last_us as f64 / 1e6 <= result.upload_secs + 1e-6);
}
