//! Integration tests for the observability layer (`smarth_core::obs`):
//! the same scaled two-rack upload in both write modes, observed through
//! a ring-buffer event sink and the shared metrics registry, plus a
//! cross-engine check that the simulator emits the same event types
//! stamped with virtual time.

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::obs::{EventRecord, Metrics, Obs, ObsEvent, RingBufferSink};
use smarth::core::units::{Bandwidth, ByteSize};
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use smarth::sim::scenario::two_rack;
use smarth::sim::simulate_upload_with_obs;
use std::sync::Arc;

const UPLOAD_BYTES: usize = 2_500_000; // 10 blocks at the 256 KiB test scale

fn fast_config() -> DfsConfig {
    let mut c = DfsConfig::test_scale();
    c.disk_bandwidth = Bandwidth::unlimited();
    c.heartbeat_interval = SimDuration::from_millis(25);
    c
}

/// Uploads one file in `mode` on an observed two-rack cluster and
/// returns the captured events, the metrics registry, and the number of
/// blocks the stream committed.
fn observed_upload(mode: WriteMode, seed: u64) -> (Vec<EventRecord>, Arc<Metrics>, u64) {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    // A cross-rack throttle keeps downstream pipeline drain slow enough
    // that SMARTH-mode overlap is robustly observable.
    let mut spec = ClusterSpec::homogeneous(InstanceType::Large);
    spec.cross_rack_throttle = Some(Bandwidth::mbps(300.0));
    let cluster = MiniCluster::start_with_obs(&spec, fast_config(), seed, obs.clone()).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(7, UPLOAD_BYTES);
    let report = client.put("/obs/file.bin", &data, mode).unwrap();
    assert_eq!(report.stats.recoveries, 0, "healthy cluster must not recover");
    cluster.shutdown();
    (sink.snapshot(), Arc::clone(obs.metrics()), report.stats.blocks_committed)
}

fn count(events: &[EventRecord], pred: impl Fn(&ObsEvent) -> bool) -> u64 {
    events.iter().filter(|r| pred(&r.event)).count() as u64
}

#[test]
fn hdfs_mode_serializes_pipelines_and_emits_no_fnfa() {
    let (events, metrics, blocks) = observed_upload(WriteMode::Hdfs, 11);
    assert!(blocks >= 2, "upload must span several blocks, got {blocks}");

    assert_eq!(
        count(&events, |e| matches!(e, ObsEvent::FnfaReceived { .. })),
        0,
        "stock HDFS never sends FIRST_NODE_FINISH to the client"
    );
    assert_eq!(metrics.fnfa_received.get(), 0);
    assert_eq!(
        metrics.concurrent_pipelines.high_water(),
        1,
        "HDFS write pipelines are strictly serialized"
    );

    // One opened + one committed close per block, in matching numbers.
    assert_eq!(
        count(&events, |e| matches!(e, ObsEvent::PipelineOpened { .. })),
        blocks
    );
    assert_eq!(
        count(
            &events,
            |e| matches!(e, ObsEvent::PipelineClosed { committed: true, .. })
        ),
        blocks
    );
    assert_eq!(metrics.bytes_written.get(), UPLOAD_BYTES as u64);
    assert_eq!(metrics.blocks_committed.get(), blocks);
}

#[test]
fn smarth_mode_emits_fnfa_per_block_and_overlaps_pipelines() {
    let (events, metrics, blocks) = observed_upload(WriteMode::Smarth, 12);
    assert!(blocks >= 2, "upload must span several blocks, got {blocks}");

    assert_eq!(
        count(&events, |e| matches!(e, ObsEvent::FnfaReceived { .. })),
        blocks,
        "SMARTH delivers exactly one FNFA per committed block"
    );
    assert_eq!(metrics.fnfa_received.get(), blocks);
    assert!(
        metrics.concurrent_pipelines.high_water() >= 2,
        "FNFA pipelining must overlap pipelines, high water {}",
        metrics.concurrent_pipelines.high_water()
    );
    assert_eq!(metrics.bytes_written.get(), UPLOAD_BYTES as u64);

    // The datanode side of the same handshake is visible too: each
    // block's first node reports sending the FNFA it received.
    assert_eq!(
        count(&events, |e| matches!(e, ObsEvent::FnfaSent { .. })),
        blocks
    );
    // Every event carries real (monotonic) time in the emulator.
    assert!(events.iter().all(|r| !r.virtual_time));
}

#[test]
fn simulator_emits_the_same_event_types_in_virtual_time() {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let scenario = two_rack(
        InstanceType::Small,
        ByteSize::mib(512),
        Some(Bandwidth::mbps(60.0)),
        WriteMode::Smarth,
    );
    let result = simulate_upload_with_obs(&scenario, obs.clone());

    let events = sink.snapshot();
    assert!(!events.is_empty(), "simulator must emit events");
    assert!(
        events.iter().all(|r| r.virtual_time),
        "simulator events are stamped with virtual time"
    );
    assert_eq!(
        count(&events, |e| matches!(e, ObsEvent::FnfaReceived { .. })),
        result.blocks,
        "one FNFA per simulated block"
    );
    assert_eq!(
        count(
            &events,
            |e| matches!(e, ObsEvent::PipelineClosed { committed: true, .. })
        ),
        result.blocks
    );
    assert_eq!(
        obs.metrics().concurrent_pipelines.high_water(),
        result.max_concurrent_pipelines as u64
    );
    // Virtual timestamps are monotone in emission order and bounded by
    // the measured upload time.
    let last_us = events.last().unwrap().at_us;
    assert!(last_us as f64 / 1e6 <= result.upload_secs + 1e-6);
    assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
}
