//! Integration tests for the SMARTH read path: striped reads with full
//! admission, typed range errors, salvage of damaged files, stalled
//! source failover within the read timeout, and corrupt-replica
//! reporting — including the namenode-error attribution when the
//! report RPC itself fails.

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::obs::{Obs, ObsEvent, RecoveryCause, RingBufferSink};
use smarth::core::trace::TraceAssembler;
use smarth::core::units::Bandwidth;
use smarth::core::{
    ClusterSpec, DatanodeId, DfsConfig, DfsError, HostRole, InstanceType, SimDuration, WriteMode,
};
use std::collections::HashMap;
use std::time::Instant;

/// The homogeneous paper cluster trimmed to `dns` datanodes — read
/// tests want small replica sets with known holders, not all nine
/// hosts.
fn small_spec(dns: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::homogeneous(InstanceType::Small);
    let mut kept = 0;
    spec.hosts.retain(|h| {
        h.role != HostRole::DataNode || {
            kept += 1;
            kept <= dns
        }
    });
    spec
}

/// Maps each datanode id to its fabric host name, so tests can target
/// faults at the holder of a specific replica.
fn hosts_by_id(cluster: &MiniCluster) -> HashMap<DatanodeId, String> {
    cluster
        .datanode_hosts()
        .into_iter()
        .map(|h| (cluster.datanode(&h).expect("host exists").id(), h))
        .collect()
}

#[test]
fn striped_reads_return_written_bytes_with_full_admission() {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let config = DfsConfig::test_scale();
    let cluster = MiniCluster::start_with_obs(&small_spec(3), config.clone(), 7, obs).unwrap();
    let client = cluster.client().unwrap();
    // Three full blocks plus an uneven tail.
    let block = config.block_size.as_u64();
    let data = random_data(0xD1CE, 3 * block as usize + 10_001);
    client.put("/read/plain.bin", &data, WriteMode::Smarth).unwrap();

    assert_eq!(client.get("/read/plain.bin").unwrap(), data);

    // pread across a block boundary returns exactly the slice.
    let (off, len) = (block - 1234, 5678u64);
    let got = client.get_range("/read/plain.bin", off, len).unwrap();
    assert_eq!(got, &data[off as usize..(off + len) as usize]);

    cluster.shutdown();
    let report = TraceAssembler::assemble(&sink.snapshot());
    // The full read plans every block over its whole replica set and
    // the fetched stripes cover every byte exactly once.
    let full_reads: Vec<_> = report
        .blocks
        .iter()
        .filter_map(|tl| tl.reads.first())
        .collect();
    assert_eq!(full_reads.len(), 4, "one read span per block");
    for span in &full_reads {
        assert_eq!(span.sources.len(), 3, "planned over the replica set");
        assert_eq!(span.stripes, 3);
        assert_eq!(span.stripes_fetched, 3);
        assert_eq!(span.source_switches, 0, "healthy reads never switch");
    }
    let read_bytes: u64 = full_reads.iter().map(|s| s.bytes).sum();
    assert_eq!(read_bytes, data.len() as u64);
}

#[test]
fn reads_past_eof_are_a_typed_out_of_range_error() {
    let cluster = MiniCluster::start(&small_spec(3), DfsConfig::test_scale(), 11).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(2, 100_000);
    client.put("/read/eof.bin", &data, WriteMode::Smarth).unwrap();

    match client.get_range("/read/eof.bin", 99_990, 20).unwrap_err() {
        DfsError::OutOfRange {
            offset,
            len,
            file_len,
            ..
        } => assert_eq!((offset, len, file_len), (99_990, 20, 100_000)),
        other => panic!("expected OutOfRange, got {other:?}"),
    }
    // offset + len overflowing u64 must classify the same way, not wrap
    // around into an in-range read.
    assert!(matches!(
        client.get_range("/read/eof.bin", u64::MAX, 2).unwrap_err(),
        DfsError::OutOfRange { .. }
    ));
    // The boundary itself is fine.
    assert_eq!(
        client.get_range("/read/eof.bin", 99_990, 10).unwrap(),
        &data[99_990..]
    );
    cluster.shutdown();
}

#[test]
fn salvage_recovers_every_intact_block_and_maps_the_gap() {
    let config = DfsConfig::test_scale();
    let cluster = MiniCluster::start(&small_spec(4), config.clone(), 21).unwrap();
    let client = cluster.client().unwrap();
    let block = config.block_size.as_u64() as usize;
    let data = random_data(0x5A1F, 3 * block + 4096);
    // Replication 1: each block lives on exactly one datanode, so
    // killing one host makes its blocks fully dead without touching the
    // rest of the file.
    let mut stream = client
        .create_with("/read/fragile.bin", WriteMode::Smarth, 1, false)
        .unwrap();
    stream.write(&data).unwrap();
    stream.close().unwrap();

    let layout: Vec<(smarth::core::BlockId, DatanodeId, u64)> = client
        .open("/read/fragile.bin")
        .unwrap()
        .block_layout()
        .iter()
        .map(|lb| (lb.block.id, lb.targets[0].id, lb.block.len))
        .collect();
    let victim = layout[1].1;
    let hosts = hosts_by_id(&cluster);
    cluster.kill_datanode(&hosts[&victim]).unwrap();

    let report = client.get_salvage("/read/fragile.bin").unwrap();

    // Exactly the blocks whose sole replica sat on the killed host are
    // gone (block 1 by construction, plus any co-located ones); every
    // other block comes back intact at its file offset.
    let mut expected_gaps = Vec::new();
    let mut offset = 0u64;
    for (id, holder, len) in &layout {
        if *holder == victim {
            expected_gaps.push((*id, offset, *len));
        }
        offset += len;
    }
    assert!(
        expected_gaps.iter().any(|(id, ..)| *id == layout[1].0),
        "the targeted block must be among the losses"
    );
    assert_eq!(
        report
            .gaps
            .iter()
            .map(|g| (g.block, g.offset, g.len))
            .collect::<Vec<_>>(),
        expected_gaps
    );
    assert!(!report.is_complete());
    assert_eq!(report.file_len, data.len() as u64);
    assert_eq!(
        report.recovered_bytes() + report.lost_bytes(),
        data.len() as u64
    );
    for (off, bytes) in &report.recovered {
        assert_eq!(
            bytes.as_slice(),
            &data[*off as usize..*off as usize + bytes.len()],
            "recovered block at {off} must match the written bytes"
        );
    }
    // A plain full read of the damaged file still fails outright.
    assert!(client.get("/read/fragile.bin").is_err());
    cluster.shutdown();
}

#[test]
fn stalled_source_fails_over_within_the_read_timeout() {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let mut config = DfsConfig::test_scale();
    config.read_timeout = SimDuration::from_secs_f64(0.4);
    let block = config.block_size.as_u64() as usize;
    let cluster = MiniCluster::start_with_obs(&small_spec(3), config, 31, obs).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(0xAB, block); // one full block, on all three nodes
    client.put("/read/stall.bin", &data, WriteMode::Smarth).unwrap();

    // Stall one replica's NIC far below a stripe per timeout window
    // (each ~87 KiB stripe dwarfs the fabric's 64 KiB burst floor):
    // whichever stripe lands on it must blow the deadline and fail
    // over instead of hanging the read.
    let stalled = cluster.datanode_hosts()[0].clone();
    cluster
        .throttle_host(&stalled, Some(Bandwidth::mbps(0.02)))
        .unwrap();

    let started = Instant::now();
    assert_eq!(client.get("/read/stall.bin").unwrap(), data);
    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs_f64() < 10.0,
        "read should fail over, not crawl: took {elapsed:?}"
    );

    let reasons: Vec<String> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            ObsEvent::SourceSwitched { reason, .. } => Some(reason.clone()),
            _ => None,
        })
        .collect();
    assert!(
        reasons.iter().any(|r| r == "timeout"),
        "expected a timeout-driven source switch, saw {reasons:?}"
    );
    cluster.shutdown();
}

#[test]
fn corrupt_replicas_are_reported_and_dropped_from_locations() {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let cluster =
        MiniCluster::start_with_obs(&small_spec(3), DfsConfig::test_scale(), 41, obs.clone())
            .unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(0xC0, 180_000);
    client.put("/read/bitrot.bin", &data, WriteMode::Smarth).unwrap();

    let (block_id, bad) = {
        let stream = client.open("/read/bitrot.bin").unwrap();
        let lb = &stream.block_layout()[0];
        (lb.block.id, lb.targets[0].id)
    };
    let hosts = hosts_by_id(&cluster);
    cluster
        .datanode(&hosts[&bad])
        .unwrap()
        .inject_read_corruption(block_id);

    // The read catches the flipped bit client-side, reports the
    // replica, and still returns the right bytes from the other copies.
    assert_eq!(client.get("/read/bitrot.bin").unwrap(), data);
    let m = obs.metrics();
    assert!(m.bad_replicas_reported.get() >= 1, "report must reach the namenode");
    assert!(
        m.re_replications_scheduled.get() >= 1,
        "dropping below the expected replica count schedules re-replication"
    );

    // The namenode stops serving the corrupt copy to future readers.
    let stream = client.open("/read/bitrot.bin").unwrap();
    let after: Vec<DatanodeId> = stream.block_layout()[0]
        .targets
        .iter()
        .map(|t| t.id)
        .collect();
    assert!(!after.contains(&bad), "corrupt replica still served: {after:?}");
    assert_eq!(after.len(), 2);

    let reasons: Vec<String> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            ObsEvent::SourceSwitched { reason, .. } => Some(reason.clone()),
            _ => None,
        })
        .collect();
    assert!(
        reasons.iter().any(|r| r == "checksum"),
        "expected a checksum-driven source switch, saw {reasons:?}"
    );
    cluster.shutdown();
}

#[test]
fn failed_bad_replica_report_is_attributed_to_the_namenode() {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let cluster =
        MiniCluster::start_with_obs(&small_spec(3), DfsConfig::test_scale(), 43, obs.clone())
            .unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(0xEE, 150_000);
    client.put("/read/orphan.bin", &data, WriteMode::Smarth).unwrap();

    let stream = client.open("/read/orphan.bin").unwrap();
    let block_id = stream.block_layout()[0].block.id;
    let bad = stream.block_layout()[0].targets[0].id;
    let hosts = hosts_by_id(&cluster);
    cluster
        .datanode(&hosts[&bad])
        .unwrap()
        .inject_read_corruption(block_id);
    // Deleting the file retires its blocks namenode-side only — the
    // datanodes keep serving an already-open stream. The corrupt-replica
    // report is now the RPC that fails (unknown block), which is the
    // one read-path failure only the namenode can cause.
    assert!(client.delete("/read/orphan.bin").unwrap());

    assert_eq!(stream.read_all().unwrap(), data, "failover still serves the read");
    let m = obs.metrics();
    assert!(
        m.recoveries(RecoveryCause::NamenodeError) >= 1,
        "the failed report must be attributed to the namenode"
    );
    assert_eq!(
        m.bad_replicas_reported.get(),
        0,
        "the namenode never accepted a report for the retired block"
    );

    cluster.shutdown();
    let report = TraceAssembler::assemble(&sink.snapshot());
    let tl = report
        .blocks
        .iter()
        .find(|b| b.block == block_id)
        .expect("block timeline assembled");
    assert!(
        tl.recoveries
            .iter()
            .any(|r| matches!(r.cause, RecoveryCause::NamenodeError)),
        "recovery span must carry the namenode_error cause"
    );
    assert!(
        tl.reads.iter().any(|r| r.source_switches >= 1),
        "the read span must record the source switch"
    );
}
