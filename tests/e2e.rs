//! Cross-crate end-to-end tests: the full emulated system (namenode +
//! datanodes + client over the fabric) exercised through the public
//! facade, plus agreement checks between the two execution engines.

use smarth::cluster::{random_data, summarize, MiniCluster, UploadWorkload};
use smarth::core::units::Bandwidth;
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use smarth::sim::scenario::two_rack;
use smarth::sim::simulate_upload;

fn fast_config() -> DfsConfig {
    let mut c = DfsConfig::test_scale();
    c.disk_bandwidth = Bandwidth::unlimited();
    c.heartbeat_interval = SimDuration::from_millis(25);
    c
}

#[test]
fn facade_exposes_full_workflow() {
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = MiniCluster::start(&spec, fast_config(), 1).unwrap();
    let client = cluster.client().unwrap();

    // Write, stat, list, read, delete through the re-exported API.
    let data = random_data(3, 800_000);
    let report = client.put("/api/file.bin", &data, WriteMode::Smarth).unwrap();
    assert_eq!(report.bytes, 800_000);
    assert!(client.exists("/api/file.bin").unwrap());
    let info = client.file_info("/api/file.bin").unwrap().unwrap();
    assert!(info.complete);
    assert_eq!(client.get("/api/file.bin").unwrap(), data);
    assert_eq!(client.list("/api").unwrap().len(), 1);
    assert!(client.delete("/api/file.bin").unwrap());
    assert!(!client.exists("/api/file.bin").unwrap());
    cluster.shutdown();
}

#[test]
fn many_files_interleaved_modes_all_verify() {
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = MiniCluster::start(&spec, fast_config(), 2).unwrap();
    let client = cluster.client().unwrap();
    let mut expected = Vec::new();
    for i in 0..10u64 {
        let mode = if i % 2 == 0 {
            WriteMode::Smarth
        } else {
            WriteMode::Hdfs
        };
        let data = random_data(i, 100_000 + (i as usize * 37_000));
        let path = format!("/mix/f{i}");
        client.put(&path, &data, mode).unwrap();
        expected.push((path, data));
    }
    for (path, data) in expected {
        assert_eq!(client.get(&path).unwrap(), data, "{path}");
    }
    cluster.shutdown();
}

#[test]
fn emulator_and_simulator_agree_on_protocol_ordering() {
    // Same qualitative question to both engines: who wins under a tight
    // cross-rack throttle, and who wins (nobody, within noise) without?
    // The emulator runs scaled sizes in real time; the simulator runs
    // paper scale in virtual time. Their *orderings* must agree.
    let throttle = Bandwidth::mbps(50.0);

    // Engine 1: deterministic simulator at paper scale.
    let sim_hdfs = simulate_upload(&two_rack(
        InstanceType::Small,
        smarth::core::ByteSize::gib(1),
        Some(throttle),
        WriteMode::Hdfs,
    ))
    .upload_secs;
    let sim_smarth = simulate_upload(&two_rack(
        InstanceType::Small,
        smarth::core::ByteSize::gib(1),
        Some(throttle),
        WriteMode::Smarth,
    ))
    .upload_secs;
    assert!(sim_smarth < sim_hdfs, "simulator: SMARTH must win throttled");
    let sim_improvement = sim_hdfs / sim_smarth - 1.0;

    // Engine 2: real threads over the emulated fabric, scaled file.
    // Wall-clock measurements flake under parallel test load, so allow
    // one retry before judging.
    let mut emu_improvement = 0.0f64;
    for attempt in 0..2 {
        let spec =
            ClusterSpec::homogeneous(InstanceType::Small).with_cross_rack_throttle(throttle);
        let cluster = MiniCluster::start(&spec, fast_config(), 3 + attempt).unwrap();
        let wl = UploadWorkload {
            files: 1,
            file_size: 3 * 1024 * 1024,
            seed: 1,
            warmup_files: 2,
        };
        let emu_hdfs = summarize(&wl.run(&cluster, WriteMode::Hdfs).unwrap()).total_secs;
        let emu_smarth = summarize(&wl.run(&cluster, WriteMode::Smarth).unwrap()).total_secs;
        cluster.shutdown();
        emu_improvement = emu_hdfs / emu_smarth - 1.0;
        if emu_improvement > 0.2 {
            break;
        }
    }

    // Both engines should see a *substantial* (not marginal) win.
    assert!(
        sim_improvement > 0.5 && emu_improvement > 0.2,
        "sim {:.0}% vs emulator {:.0}%",
        sim_improvement * 100.0,
        emu_improvement * 100.0
    );
}

#[test]
fn smarth_stream_respects_pipeline_cap_from_config_override() {
    let spec = ClusterSpec::homogeneous(InstanceType::Large)
        .with_cross_rack_throttle(Bandwidth::mbps(60.0));
    let mut config = fast_config();
    config.max_pipelines_override = Some(1);
    let cluster = MiniCluster::start(&spec, config, 4).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(5, 1_500_000);
    let report = client.put("/cap/one.bin", &data, WriteMode::Smarth).unwrap();
    // With cap 1 there is never pipeline overlap beyond current+0.
    assert_eq!(report.stats.max_concurrent_pipelines, 1);
    assert_eq!(client.get("/cap/one.bin").unwrap(), data);
    cluster.shutdown();
}

#[test]
fn replication_factor_two_works_end_to_end() {
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let mut config = fast_config();
    config.replication = 2;
    let cluster = MiniCluster::start(&spec, config, 6).unwrap();
    let client = cluster.client().unwrap();
    let data = random_data(6, 600_000);
    for mode in [WriteMode::Hdfs, WriteMode::Smarth] {
        let path = format!("/r2/{}", mode.name());
        client.put(&path, &data, mode).unwrap();
        assert_eq!(client.get(&path).unwrap(), data);
    }
    // Replica accounting: 600 KB → 3 blocks × 2 replicas per mode.
    let total: usize = cluster
        .datanode_hosts()
        .iter()
        .map(|h| cluster.datanode(h).unwrap().store().replica_count())
        .sum();
    assert_eq!(total, 12);
    cluster.shutdown();
}

#[test]
fn overwrite_semantics() {
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = MiniCluster::start(&spec, fast_config(), 7).unwrap();
    let client = cluster.client().unwrap();
    let first = random_data(1, 50_000);
    client.put("/ow/x", &first, WriteMode::Hdfs).unwrap();
    // Plain create over an existing path fails...
    let err = client.create("/ow/x", WriteMode::Hdfs).err().unwrap();
    assert!(matches!(err, smarth::core::DfsError::AlreadyExists(_)));
    // ...but overwrite replaces content.
    let second = random_data(2, 80_000);
    let mut s = client
        .create_with("/ow/x", WriteMode::Smarth, 3, true)
        .unwrap();
    s.write(&second).unwrap();
    s.close().unwrap();
    assert_eq!(client.get("/ow/x").unwrap(), second);
    cluster.shutdown();
}

#[test]
fn ranged_reads_match_full_reads() {
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = MiniCluster::start(&spec, fast_config(), 9).unwrap();
    let client = cluster.client().unwrap();
    let block = cluster.config().block_size.as_u64();
    // 2.5 blocks so ranges can straddle block boundaries.
    let data = random_data(77, (block * 2 + block / 2) as usize);
    client.put("/pr/f.bin", &data, WriteMode::Smarth).unwrap();

    let cases = [
        (0u64, 100u64),                         // head
        (block - 50, 100),                      // straddles block 0/1
        (block * 2 - 10, block / 2 + 10),       // straddles into the tail
        (data.len() as u64 - 1, 1),             // last byte
        (0, data.len() as u64),                 // whole file
        (block, 0),                             // empty range
    ];
    for (off, len) in cases {
        let got = client.get_range("/pr/f.bin", off, len).unwrap();
        assert_eq!(
            got,
            &data[off as usize..(off + len) as usize],
            "range {off}+{len}"
        );
    }
    // Out-of-bounds is rejected.
    assert!(client
        .get_range("/pr/f.bin", data.len() as u64, 1)
        .is_err());
    assert!(client.get_range("/pr/f.bin", u64::MAX, 2).is_err());
    cluster.shutdown();
}
