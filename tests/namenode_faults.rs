//! Integration tests for the hostile-namenode story: mid-stream namenode
//! outages convert into attributed `NamenodeError` recoveries instead of
//! stream death, retried mutations cannot double-allocate thanks to the
//! idempotency envelope, handler panics surface as typed errors while
//! the server keeps serving, datanode heartbeats survive namenode
//! outages with bounded backoff, and the `hostile` soak profile rides
//! out every injected namenode fault with zero stream failures.

use smarth::cluster::soak::{self, SoakConfig};
use smarth::cluster::{random_data, MiniCluster};
use smarth::core::config::RetryPolicy;
use smarth::core::obs::{Obs, ObsEvent, RecoveryCause, RingBufferSink};
use smarth::core::proto::{ClientRequest, ClientResponse};
use smarth::core::units::Bandwidth;
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, SimDuration, WriteMode};
use std::time::Duration;

fn fast_config() -> DfsConfig {
    let mut c = DfsConfig::test_scale();
    c.disk_bandwidth = Bandwidth::unlimited();
    c.heartbeat_interval = SimDuration::from_millis(25);
    c
}

/// A retry policy tight enough that a short outage exhausts it, so the
/// tests below can observe `NamenodeUnavailable` converting into
/// stream-level `NamenodeError` recoveries.
fn tiny_retries() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        base_backoff: SimDuration::from_millis(20),
        multiplier: 2.0,
        jitter: 0.25,
        deadline: SimDuration::from_millis(200),
    }
}

fn cluster_with_obs(seed: u64, config: DfsConfig) -> (MiniCluster, std::sync::Arc<RingBufferSink>) {
    let sink = RingBufferSink::new(65_536);
    let obs = Obs::new(sink.clone());
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let cluster = MiniCluster::start_with_obs(&spec, config, seed, obs).unwrap();
    (cluster, sink)
}

#[test]
fn mid_stream_namenode_outage_recovers_as_namenode_error() {
    // Partition the client from the namenode mid-upload. The stream's
    // RPC retries exhaust, the outage is recorded as a NamenodeError
    // recovery (metric + balanced trace span), and once the partition
    // heals the same stream finishes and the data verifies.
    let mut config = fast_config();
    config.rpc_retry = tiny_retries();
    let (cluster, sink) = cluster_with_obs(61, config);
    let client = cluster.client().unwrap();
    let data = random_data(91, 1_800_000);

    let mut stream = client.create("/nnfault/a.bin", WriteMode::Smarth).unwrap();
    stream.write(&data[..500_000]).unwrap();

    cluster.fabric().partition_link("client", "namenode");
    let fabric = cluster.fabric().clone();
    let healer = std::thread::spawn(move || {
        // Long enough that at least one addBlock exhausts its retry
        // budget (2 attempts + backoff ≈ 50 ms per call), short enough
        // that the stream's own recovery attempts (5) outlast it.
        std::thread::sleep(Duration::from_millis(400));
        fabric.heal_link("client", "namenode");
    });

    // This write spans several more 256 KiB blocks, so it needs fresh
    // allocations while the namenode is unreachable.
    stream.write(&data[500_000..]).unwrap();
    let stats = stream.close().unwrap();
    healer.join().unwrap();

    assert!(
        stats.recoveries >= 1,
        "the outage must surface as at least one recovery, got {}",
        stats.recoveries
    );
    let metrics = cluster.obs().metrics();
    assert!(
        metrics.recoveries(RecoveryCause::NamenodeError) >= 1,
        "outage must be attributed to the namenode cause"
    );
    assert_eq!(client.get("/nnfault/a.bin").unwrap(), data);
    cluster.shutdown();

    // The incident shows up as a balanced recovery span in the event
    // stream: every NamenodeError RecoveryStarted has a matching
    // RecoveryFinished for the same block.
    let events = sink.snapshot();
    let mut started = Vec::new();
    for r in &events {
        if let ObsEvent::RecoveryStarted { block, cause, .. } = r.event {
            if cause == RecoveryCause::NamenodeError {
                started.push(block);
            }
        }
    }
    assert!(!started.is_empty(), "no NamenodeError recovery span emitted");
    for block in started {
        assert!(
            events.iter().any(|r| matches!(
                r.event,
                ObsEvent::RecoveryFinished { block: b, .. } if b == block
            )),
            "unbalanced recovery span for {block}"
        );
    }
}

#[test]
fn retried_add_block_does_not_double_allocate() {
    // Replay an identical Idempotent AddBlock — the exact wire shape a
    // client resends after a dropped response — straight at the
    // namenode: the cached response comes back and no second block is
    // allocated or committed.
    let cluster = MiniCluster::start(
        &ClusterSpec::homogeneous(InstanceType::Large),
        fast_config(),
        67,
    )
    .unwrap();
    let nn = cluster.namenode_state();

    let client = match nn.handle_client_request(ClientRequest::Register {
        host_name: "client".into(),
        rack: "r0".into(),
    }) {
        ClientResponse::Registered { client } => client,
        other => panic!("register failed: {other:?}"),
    };
    let file_id = match nn.handle_client_request(ClientRequest::Create {
        client,
        path: "/dedupe/f.bin".into(),
        replication: 3,
        block_size: 256 * 1024,
        overwrite: false,
        mode: WriteMode::Smarth,
    }) {
        ClientResponse::Created { file_id } => file_id,
        other => panic!("create failed: {other:?}"),
    };

    let add = ClientRequest::Idempotent {
        client,
        request_id: 42,
        inner: Box::new(ClientRequest::AddBlock {
            client,
            file_id,
            previous: None,
            excluded: Vec::new(),
        }),
    };
    let first = nn.handle_client_request(add.clone());
    let lb = match &first {
        ClientResponse::BlockAllocated(lb) => lb.clone(),
        other => panic!("addBlock failed: {other:?}"),
    };
    let blocks_after_first = nn.cluster_report().blocks;

    // The retry: same client, same request_id, same inner request.
    let second = nn.handle_client_request(add);
    assert_eq!(
        first, second,
        "a retried mutation must replay the cached response verbatim"
    );
    assert_eq!(
        nn.cluster_report().blocks,
        blocks_after_first,
        "the retry must not allocate a second block"
    );

    // A *new* request_id is a genuinely new mutation and does allocate.
    let third = nn.handle_client_request(ClientRequest::Idempotent {
        client,
        request_id: 43,
        inner: Box::new(ClientRequest::AddBlock {
            client,
            file_id,
            previous: None,
            excluded: Vec::new(),
        }),
    });
    match third {
        ClientResponse::BlockAllocated(lb2) => {
            assert_ne!(lb.block.id, lb2.block.id, "fresh id ⇒ fresh block")
        }
        other => panic!("fresh addBlock failed: {other:?}"),
    }
    assert_eq!(nn.cluster_report().blocks, blocks_after_first + 1);
    cluster.shutdown();
}

#[test]
fn handler_panic_is_a_typed_error_and_the_server_survives() {
    // Arm the namenode's panic hook for one path: the create comes back
    // as a typed error (not a dead connection), handler_panics ticks,
    // and the very next request on the same server succeeds.
    let (cluster, _sink) = cluster_with_obs(73, fast_config());
    let client = cluster.client().unwrap();

    cluster.namenode_state().arm_create_panic("/boom.bin");
    let err = match client.create("/boom.bin", WriteMode::Smarth) {
        Ok(_) => panic!("armed create must fail"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("panicked"),
        "panic must surface as a typed handler error, got: {err}"
    );
    assert_eq!(cluster.obs().metrics().handler_panics.get(), 1);

    // The accept loop survived the panic: the same client keeps working.
    let data = random_data(5, 300_000);
    client.put("/after-boom.bin", &data, WriteMode::Smarth).unwrap();
    assert_eq!(client.get("/after-boom.bin").unwrap(), data);
    assert_eq!(
        cluster.obs().metrics().handler_panics.get(),
        1,
        "healthy requests must not tick the panic counter"
    );
    cluster.shutdown();
}

#[test]
fn datanode_heartbeats_survive_a_namenode_outage() {
    // Partition one datanode from the namenode: its heartbeat loop must
    // count failures and back off — not break permanently — and resume
    // once the link heals.
    let (cluster, _sink) = cluster_with_obs(79, fast_config());
    let metrics = cluster.obs().metrics();
    assert_eq!(metrics.heartbeat_failures.get(), 0);

    cluster.fabric().partition_link("dn0", "namenode");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while metrics.heartbeat_failures.get() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "heartbeat failures never counted during the partition"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.fabric().heal_link("dn0", "namenode");

    // Healed: dn0 must report again (fresh heartbeats keep it alive and
    // writes through it keep working).
    let failures_at_heal = metrics.heartbeat_failures.get();
    let client = cluster.client().unwrap();
    let data = random_data(9, 600_000);
    client.put("/hb/alive.bin", &data, WriteMode::Smarth).unwrap();
    assert_eq!(client.get("/hb/alive.bin").unwrap(), data);
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        metrics.heartbeat_failures.get() <= failures_at_heal + 1,
        "failures must stop accumulating after the heal"
    );
    cluster.shutdown();
}

#[test]
fn hostile_soak_rides_out_namenode_faults() {
    // The hostile profile stalls and partitions the namenode repeatedly;
    // the widened retry budget must absorb every outage: zero stream
    // failures, zero violations (which includes the attribution check —
    // any NamenodeError recovery must land in a namenode-fault window —
    // and the zero-handler-panics gate).
    let cfg = SoakConfig::hostile(83);
    let report = soak::run(&cfg).unwrap();

    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "\n{}",
        report.render()
    );
    assert!(report.blocks_committed > 0, "\n{}", report.render());
    for w in &report.workers {
        assert!(w.ops > 0, "every client makes progress\n{}", report.render());
        assert_eq!(w.op_errors, 0, "errors: {:?}\n{}", w.errors, report.render());
        assert_eq!(w.integrity_failures, 0, "\n{}", report.render());
    }
    // All three namenode faults actually fired.
    assert_eq!(report.fault_log.iter().filter(|f| f.applied).count(), 3);

    // The widened retry budget outlasts every outage, so streams ride
    // the faults out without a single recovery incident.
    assert_eq!(report.recoveries_total(), 0, "\n{}", report.render());

    // Replayability: the report's config (fault plan + retry policy +
    // heartbeat horizon) round-trips through JSON bit-for-bit...
    let back = SoakConfig::from_json(&report.config.to_json()).unwrap();
    assert_eq!(back.plan, cfg.plan);
    assert_eq!(back.config.rpc_retry, cfg.config.rpc_retry);
    assert_eq!(
        back.to_json().to_string_compact(),
        report.config.to_json().to_string_compact()
    );
    // ...and actually re-running the decoded config reproduces the same
    // clean verdict: same fault schedule, zero violations, zero
    // recoveries, zero op errors — the saved report alone is enough to
    // replay a hostile run.
    let replayed = soak::run(&back).unwrap();
    assert_eq!(
        replayed.violations,
        Vec::<String>::new(),
        "\n{}",
        replayed.render()
    );
    assert_eq!(replayed.plan, report.plan);
    assert_eq!(replayed.recoveries, report.recoveries);
    assert!(replayed.workers.iter().all(|w| w.op_errors == 0));
}

#[test]
fn namenode_stall_exhausts_tight_retries_into_recoveries() {
    // Same outage class as the soak, but with a no-retry budget: a
    // stalled namenode NIC trips the per-attempt deadline, the single
    // attempt is the whole budget, and the stream logs NamenodeError
    // recoveries yet still completes once the stall lifts.
    let mut config = fast_config();
    config.rpc_retry = RetryPolicy {
        attempts: 1,
        ..tiny_retries()
    };
    // The stall starves heartbeats as well; keep the expiry horizon
    // (interval × 10 = 1 s) past the 500 ms stall so the namenode does
    // not declare the datanodes dead and fail placement.
    config.heartbeat_interval = SimDuration::from_millis(100);
    let (cluster, _sink) = cluster_with_obs(89, config);
    let client = cluster.client().unwrap();
    let data = random_data(41, 1_500_000);

    let mut stream = client.create("/stall/s.bin", WriteMode::Smarth).unwrap();
    stream.write(&data[..400_000]).unwrap();

    // Throttle the namenode NIC to a trickle (~125 B/s): connections
    // open but responses crawl past the 200 ms per-attempt deadline.
    cluster
        .throttle_host("namenode", Some(Bandwidth::mbps(0.001)))
        .unwrap();
    let cluster_ref = &cluster;
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(500));
            cluster_ref.throttle_host("namenode", None).unwrap();
        });
        stream.write(&data[400_000..]).unwrap();
        stream.close().unwrap();
    });

    assert!(
        cluster.obs().metrics().recoveries(RecoveryCause::NamenodeError) >= 1,
        "deadline exhaustion must be recorded as a NamenodeError recovery"
    );
    assert_eq!(client.get("/stall/s.bin").unwrap(), data);
    cluster.shutdown();
}
