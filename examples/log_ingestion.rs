//! A workload from the paper's motivation: continuous ingestion of
//! many log files into the DFS from an edge client whose rack uplink is
//! contended. Compares aggregate ingestion throughput under both write
//! protocols and shows the speed records SMARTH learns along the way.
//!
//! ```text
//! cargo run --release --example log_ingestion
//! ```

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::units::Bandwidth;
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, WriteMode};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mixed-capability cluster with two congested nodes — the
    // "bandwidth contention" situation of §V-B.2.
    let spec = ClusterSpec::homogeneous(InstanceType::Medium)
        .with_throttled_datanodes(2, Bandwidth::mbps(40.0));
    let mut config = DfsConfig::test_scale();
    config.heartbeat_interval = smarth::core::SimDuration::from_millis(25);
    let cluster = MiniCluster::start(&spec, config, 3)?;
    let client = cluster.client()?;

    // Rotated log segments of ~2 MiB (8 blocks at test scale): large
    // enough that SMARTH's pipelining engages. (Tiny 1-2 block files do
    // not benefit — the §IV-C one-pipeline-per-datanode rule then only
    // forces placement diversity without overlap; see EXPERIMENTS.md.)
    const FILES: usize = 6;
    const FILE_SIZE: usize = 2 * 1024 * 1024;

    for mode in [WriteMode::Hdfs, WriteMode::Smarth] {
        // Warm the speed records like a long-running ingestion daemon.
        for i in 0..3 {
            client.put(
                &format!("/logs/{}/warmup-{i}", mode.name()),
                &random_data(1000 + i as u64, FILE_SIZE),
                mode,
            )?;
            client.flush_speed_report()?;
        }

        let start = Instant::now();
        let mut bytes = 0u64;
        for i in 0..FILES {
            let data = random_data(i as u64, FILE_SIZE);
            let report = client.put(
                &format!("/logs/{}/app-{i:03}.log", mode.name()),
                &data,
                mode,
            )?;
            bytes += report.bytes;
            client.flush_speed_report()?;
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<6}: {FILES} files, {bytes} bytes in {secs:.2}s → {:.1} Mbps aggregate",
            mode.name(),
            bytes as f64 * 8.0 / 1e6 / secs
        );
    }

    println!(
        "\nclient learned speed records for {} datanodes (reported via 3s-style heartbeats)",
        client.known_speeds()
    );

    // Spot-check one file per mode.
    for mode in [WriteMode::Hdfs, WriteMode::Smarth] {
        let path = format!("/logs/{}/app-000.log", mode.name());
        assert_eq!(client.get(&path)?, random_data(0, FILE_SIZE));
    }
    println!("integrity spot-checks passed");

    cluster.shutdown();
    Ok(())
}
