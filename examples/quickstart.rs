//! Quickstart: spin up an emulated DFS cluster, upload a file with the
//! SMARTH protocol, read it back and verify it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, WriteMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 9-datanode, two-rack cluster of EC2 "Large" instances (Table I
    // of the paper), emulated in-process with bandwidth-shaped links.
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    // Test-scale config: 256 KiB blocks / 16 KiB packets keep the demo
    // quick while preserving the paper's block:packet geometry.
    let cluster = MiniCluster::start(&spec, DfsConfig::test_scale(), 42)?;
    println!(
        "cluster up: {} datanodes across racks {:?}",
        cluster.spec().datanode_count(),
        cluster.spec().racks()
    );

    let client = cluster.client()?;
    let data = random_data(7, 2 * 1024 * 1024);

    // Upload with SMARTH's asynchronous multi-pipeline protocol...
    let report = client.put("/demo/hello.bin", &data, WriteMode::Smarth)?;
    println!(
        "SMARTH put: {} bytes in {:?} ({:.1} Mbps), {} blocks, {} concurrent pipelines max",
        report.bytes,
        report.elapsed,
        report.throughput_mbps(),
        report.stats.blocks_committed,
        report.stats.max_concurrent_pipelines,
    );

    // ...and with the stock HDFS stop-and-wait protocol for comparison.
    let report = client.put("/demo/hello-hdfs.bin", &data, WriteMode::Hdfs)?;
    println!(
        "HDFS   put: {} bytes in {:?} ({:.1} Mbps), single pipeline",
        report.bytes,
        report.elapsed,
        report.throughput_mbps(),
    );

    // Read back and verify.
    let back = client.get("/demo/hello.bin")?;
    assert_eq!(back, data, "round-trip must be bit-exact");
    println!("read back {} bytes — checksums verified", back.len());

    // Namespace operations.
    for entry in client.list("/demo")? {
        println!("  {} ({} bytes, complete={})", entry.path, entry.len, entry.complete);
    }

    cluster.shutdown();
    println!("done");
    Ok(())
}
