//! The paper's §V-B.1 two-rack experiment, live on the emulated cluster:
//! throttle the cross-rack links with the fabric's `tc` equivalent and
//! watch SMARTH overlap pipelines while stock HDFS stalls on the slow
//! hop.
//!
//! ```text
//! cargo run --release --example two_rack_upload
//! ```

use smarth::cluster::{random_data, summarize, MiniCluster, UploadWorkload};
use smarth::core::units::Bandwidth;
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, WriteMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("two-rack scenario: 9 small-instance datanodes, cross-rack throttle 50 Mbps");
    let spec = ClusterSpec::homogeneous(InstanceType::Small)
        .with_cross_rack_throttle(Bandwidth::mbps(50.0));
    let mut config = DfsConfig::test_scale();
    config.heartbeat_interval = smarth::core::SimDuration::from_millis(30);
    let cluster = MiniCluster::start(&spec, config, 7)?;

    // 4 MiB per upload at test scale stands in for the paper's 8 GB; the
    // block:packet ratio and buffer-per-block rule are unchanged.
    let workload = UploadWorkload {
        files: 2,
        file_size: 4 * 1024 * 1024,
        seed: 99,
        warmup_files: 2,
    };

    let hdfs = summarize(&workload.run(&cluster, WriteMode::Hdfs)?);
    println!(
        "HDFS  : {:>7.2}s total, {:>6.1} Mbps",
        hdfs.total_secs, hdfs.mean_throughput_mbps
    );

    let smarth = summarize(&workload.run(&cluster, WriteMode::Smarth)?);
    println!(
        "SMARTH: {:>7.2}s total, {:>6.1} Mbps",
        smarth.total_secs, smarth.mean_throughput_mbps
    );

    let improvement = (hdfs.total_secs / smarth.total_secs - 1.0) * 100.0;
    println!("improvement: {improvement:.0}% (paper reports 27-245% across throttle levels)");

    // Everything written is still readable and intact.
    let client = cluster.client()?;
    let check = random_data(99, workload.file_size);
    let path = format!("/data/{}/0", WriteMode::Smarth.name());
    assert_eq!(client.get(&path)?, check);
    println!("integrity check passed on {path}");

    cluster.shutdown();
    Ok(())
}
