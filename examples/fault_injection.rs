//! Fault tolerance demo (paper §IV): kill a datanode in the middle of a
//! multi-pipeline upload and watch Algorithms 3/4 recover — the upload
//! completes and the file reads back bit-exact.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use smarth::cluster::{random_data, MiniCluster};
use smarth::core::units::Bandwidth;
use smarth::core::{ClusterSpec, DfsConfig, InstanceType, WriteMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ClusterSpec::homogeneous(InstanceType::Large);
    let mut config = DfsConfig::test_scale();
    config.disk_bandwidth = Bandwidth::unlimited();
    let cluster = MiniCluster::start(&spec, config, 21)?;
    let client = cluster.client()?;

    let data = random_data(5, 3 * 1024 * 1024);
    println!("uploading {} bytes with SMARTH...", data.len());
    let mut stream = client.create("/critical/data.bin", WriteMode::Smarth)?;

    // Send the first third, then pull the plug on a datanode that holds
    // an in-flight (not yet finalized) replica.
    stream.write(&data[..1024 * 1024])?;
    let victim = cluster
        .datanode_hosts()
        .into_iter()
        .find(|h| {
            let store = cluster.datanode(h).unwrap().store();
            store.replica_count() > store.finalized_blocks().len()
        })
        .expect("a datanode must be mid-pipeline");
    println!("killing {victim} mid-upload (it holds an in-flight replica)");
    cluster.kill_datanode(&victim)?;

    // Keep writing: the stream detects the broken pipeline, probes the
    // survivors, bumps the generation stamp, truncates to the common
    // prefix, rebuilds the pipeline and resends (Algorithm 3), then
    // resumes the interrupted block (Algorithm 4).
    stream.write(&data[1024 * 1024..])?;
    let stats = stream.close()?;
    println!(
        "upload finished: {} blocks, {} pipeline recoveries, {} bytes",
        stats.blocks_committed, stats.recoveries, stats.bytes_written
    );
    assert!(stats.recoveries >= 1, "the kill must have triggered recovery");

    let back = client.get("/critical/data.bin")?;
    assert_eq!(back, data, "data must survive the datanode loss bit-exact");
    println!("read-back verified: {} bytes intact despite losing {victim}", back.len());

    cluster.shutdown();
    Ok(())
}
