//! The paper's §V-B.3 heterogeneous-cluster experiment (Figure 13) at
//! *full paper scale* on the deterministic simulator: 8 GB uploads onto
//! a mixed small/medium/large cluster, no throttling — heterogeneity
//! alone creates the win.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use smarth::core::units::ByteSize;
use smarth::core::WriteMode;
use smarth::sim::scenario::{heterogeneous, improvement_percent};
use smarth::sim::simulate_upload;

fn main() {
    println!("heterogeneous cluster: 3 small + 3 medium + 3 large datanodes (paper Fig. 13)");
    println!("{:>6}  {:>9}  {:>10}  {:>11}", "file", "HDFS (s)", "SMARTH (s)", "improvement");

    for gib in [1u64, 2, 4, 8] {
        let h = simulate_upload(&heterogeneous(ByteSize::gib(gib), WriteMode::Hdfs));
        let s = simulate_upload(&heterogeneous(ByteSize::gib(gib), WriteMode::Smarth));
        println!(
            "{:>5}G  {:>9.1}  {:>10.1}  {:>10.0}%",
            gib,
            h.upload_secs,
            s.upload_secs,
            improvement_percent(h.upload_secs, s.upload_secs)
        );
    }
    println!();
    println!("paper reference: 8 GB → 289 s (HDFS) vs 205 s (SMARTH), a 41% gain");

    // Peek inside SMARTH's placement: which nodes served as first
    // datanode? The slow small instances (ids 0-2) should be rare.
    let s = simulate_upload(&heterogeneous(ByteSize::gib(8), WriteMode::Smarth));
    println!("\nfirst-datanode histogram over {} blocks (dn0-2 small, dn3-5 medium, dn6-8 large):", s.blocks);
    for (dn, count) in &s.first_node_histogram {
        println!("  dn{dn}: {count} blocks{}", if *dn < 3 { "  (small instance)" } else { "" });
    }
    println!(
        "max concurrent pipelines: {} (cap: 9 datanodes / 3 replicas = 3)",
        s.max_concurrent_pipelines
    );

    // A slice of the pipeline timeline — the paper's Figure 4 in data:
    // each block's pipeline opens at the previous block's FNFA, while
    // earlier pipelines are still draining to their replicas.
    println!("\nfirst five pipelines (open → FNFA → fully-acked, seconds):");
    for (i, t) in s.timeline.iter().take(5).enumerate() {
        println!(
            "  block {i}: dn{:<2} {:>7.2} → {:>7.2} → {:>7.2}",
            t.first_node,
            t.open_secs,
            t.fnfa_secs.unwrap_or(f64::NAN),
            t.done_secs
        );
    }
}
