#!/usr/bin/env bash
# Conformance drift gate: diffs the digests embedded in the current
# run's results/conformance_*.trace.json against the same-named traces
# from a previous green run, using the tight same-engine tolerance
# bands. Point SMARTH_BASELINE_DIR (default: baseline) at the
# downloaded artifacts; an empty or missing baseline dir passes with a
# notice so the gate bootstraps itself on the first run.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_DIR="${SMARTH_BASELINE_DIR:-baseline}"
if [ ! -d "$BASELINE_DIR" ]; then
  echo "diff_against_baseline: no baseline dir at $BASELINE_DIR; nothing to compare (PASS)"
  exit 0
fi

SMARTH_BASELINE_DIR="$BASELINE_DIR" \
  cargo run -p smarth-bench --release --bin figures -- diff-baseline
