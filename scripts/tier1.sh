#!/usr/bin/env bash
# Tier-1 verification: the release build must compile and every
# workspace test must pass. This is the gate every PR is held to
# (see ROADMAP.md); CI runs exactly this script so local runs and
# the workflow can never drift apart.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
