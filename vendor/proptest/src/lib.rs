//! Vendored property-testing shim exposing the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate
//! replaces upstream `proptest` with a small deterministic
//! random-testing harness: the `proptest!` macro expands each property
//! into a `#[test]` that draws `config.cases` random inputs from the
//! declared strategies and runs the body. There is **no shrinking** —
//! a failure reports the panicking case's inputs via the standard
//! assert message instead of a minimized counterexample. Seeds are
//! derived from the test's module path + name, so failures reproduce
//! across runs.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator backing all strategies (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds from an arbitrary string (test identity), FNV-1a hashed.
    pub fn deterministic(identity: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in identity.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-count configuration (subset of upstream's fields).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-varied values; upstream generates NaN/inf too but
        // no property in this workspace relies on those.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        any::<T>()
    }
}

pub fn any<T>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// `&str` regex-ish string strategies. Supports the tiny dialect used
/// in this workspace: a single `[a-z…]` character class or `.` followed
/// by a `{m,n}` repetition (e.g. `"[a-z]{1,6}"`, `".{0,64}"`). Other
/// patterns are treated as literal strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((chars, lo, hi)) => {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..n)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

/// Parses `<class>{m,n}` where `<class>` is `[a-b…]` or `.`; returns
/// the candidate characters and repetition bounds.
fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let (class, rest) = if let Some(rest) = pat.strip_prefix('[') {
        let close = rest.find(']')?;
        let inner: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < inner.len() {
            if i + 2 < inner.len() && inner[i + 1] == '-' {
                let (a, b) = (inner[i] as u32, inner[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(inner[i]);
                i += 1;
            }
        }
        (chars, &rest[close + 1..])
    } else if let Some(rest) = pat.strip_prefix('.') {
        // Printable ASCII stands in for "any char but newline".
        ((b' '..=b'~').map(|b| b as char).collect(), rest)
    } else {
        return None;
    };
    let rest = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rest.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = rest.trim().parse().ok()?;
            (n, n)
        }
    };
    if class.is_empty() || lo > hi {
        return None;
    }
    Some((class, lo, hi))
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_set(strategy, len_range)`. Like
    /// upstream, duplicates may yield a set smaller than requested.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty set size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            // Bounded attempts so a narrow element space can't loop forever.
            for _ in 0..target.saturating_mul(4).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod sample {
    use super::*;

    /// An index into a collection whose length is only known at use
    /// time (`any::<Index>()` then `idx.index(len)`).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, OneOf, Strategy};
}

pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestRng};
}

pub mod prelude {
    pub use super::collection;
    pub use super::sample;
    pub use super::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        // `Strategy::boxed` (rather than an `as dyn` cast) so the boxed
        // `Value` type is pinned by associated-type normalization; a
        // `Value = _` cast placeholder fails inference (E0282).
        $crate::OneOf::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Expands property functions into plain `#[test]`s that draw
/// `config.cases` random inputs. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategies_generate_within_spec() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&".{0,64}", &mut rng);
            assert!(t.len() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_draws_in_range(x in 3usize..17, b in any::<bool>(),
                                v in collection::vec(any::<u8>(), 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(b || !b);
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(opt in prop_oneof![Just(None), (30u32..200).prop_map(Some)]) {
            if let Some(v) = opt {
                prop_assert!((30..200).contains(&v));
            }
        }
    }
}
