//! Vendored multi-producer multi-consumer channel exposing the subset
//! of the `crossbeam-channel` API this workspace uses: `unbounded`,
//! `bounded`, cloneable senders/receivers, blocking and timed receives,
//! and receiver iteration. Built on `Mutex`/`Condvar`; disconnection
//! semantics match upstream (a channel disconnects when all handles on
//! the other side drop; queued messages remain receivable).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or all senders drop.
    recv_ready: Condvar,
    /// Signalled when capacity frees or all receivers drop.
    send_ready: Condvar,
    /// None = unbounded.
    cap: Option<usize>,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Error returned when sending on a channel with no receivers left.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}
impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}
impl<T> std::error::Error for SendError<T> {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}
impl std::error::Error for RecvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}
impl std::error::Error for TryRecvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}
impl std::error::Error for RecvTimeoutError {}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}
impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` messages; senders block when
/// it is full. Capacity 0 (a rendezvous channel upstream) is treated as
/// capacity 1 here — close enough for this workspace's buffer sizing.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
        cap,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Blocks while a bounded channel is full; errors once every
    /// receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.inner.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .inner
                        .send_ready
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => {
                    st.queue.push_back(msg);
                    drop(st);
                    self.inner.recv_ready.notify_one();
                    return Ok(());
                }
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.inner.recv_ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.lock();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.inner.send_ready.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.send_ready.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .inner
                .recv_ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.send_ready.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .inner
                .recv_ready
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Blocking iterator ending when the channel disconnects and drains.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.inner.send_ready.notify_all();
        }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}
