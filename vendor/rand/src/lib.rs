//! Vendored, dependency-free subset of the `rand` crate (0.8-style API).
//!
//! Provides the `RngCore` / `SeedableRng` / `Rng` traits and uniform
//! range sampling used by the workspace. The build environment has no
//! crates.io access, so this replaces the upstream crate; generators
//! themselves (e.g. `ChaCha8Rng`) live in the vendored `rand_chacha`.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64, like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range that admits uniform sampling (subset of upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply rejection-free mapping; bias is
                // negligible (< 2^-32) for the spans this workspace uses.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f64);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// High-level convenience methods, blanket-implemented for every
/// `RngCore` like upstream.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Minimal `rngs` module for API compatibility.
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }
}
