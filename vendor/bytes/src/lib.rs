//! Vendored, dependency-free subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small part of the `bytes` API it actually
//! uses: cheaply cloneable immutable [`Bytes`] slices, a growable
//! [`BytesMut`] builder, and the little-endian [`Buf`]/[`BufMut`]
//! accessors consumed by the wire codec. Semantics match the upstream
//! crate for this subset; anything not used by the workspace is
//! deliberately absent.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// A cheaply cloneable, sliceable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
    start: usize,
    end: usize,
}

impl Bytes {
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn full(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(v) => v.as_slice(),
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.full()[self.start..self.end]
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice index starts at {begin} but ends at {end}");
        assert!(end <= len, "slice end {end} out of range for length {len}");
        Bytes {
            inner: self.inner.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits the bytes into two at the given index, keeping `[at, len)`
    /// in self and returning `[0, at)`.
    pub fn split_to(&mut self, at: usize) -> Self {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    pub fn split_off(&mut self, at: usize) -> Self {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            inner: Inner::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "...{} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// Read access to a sequence of bytes, consuming from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: {} < {}",
            self.remaining(),
            dst.len()
        );
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} past end {}", self.len());
        self.start += cnt;
    }

    /// Zero-copy: the returned `Bytes` shares storage with self.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes {len} past end {}", self.len());
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

/// Write access to an append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2, 3, 4]);
        assert_eq!(s.slice(1..), [3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn buf_roundtrip() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u16_le(513);
        m.put_u32_le(70_000);
        m.put_u64_le(u64::MAX - 1);
        m.put_f64_le(2.5);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 513);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), 2.5);
        assert_eq!(b.copy_to_bytes(3), "xyz");
        assert_eq!(b.remaining(), 0);
    }
}
