//! Vendored subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Exposes the non-poisoning `Mutex` / `Condvar` interface the
//! workspace uses (`lock()` returns a guard directly; `Condvar::wait`
//! takes `&mut MutexGuard`). Poisoned std locks are transparently
//! recovered — panicking while holding a lock does not wedge the other
//! threads, matching parking_lot semantics closely enough for this
//! codebase.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back
    // without unsafe; it is None only transiently inside wait().
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Waits with a timeout; returns whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Waits until a deadline; returns whether the wait timed out.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Non-poisoning reader-writer lock backed by `std::sync::RwLock`,
/// mirroring the parking_lot `RwLock` surface the workspace uses.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}
