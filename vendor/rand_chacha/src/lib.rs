//! Vendored ChaCha8 random number generator.
//!
//! A real ChaCha8 keystream (RFC 7539 block function at 8 rounds), so
//! statistical quality matches the upstream `rand_chacha` crate; the
//! exact output stream is *not* guaranteed to be bit-identical to
//! upstream, and nothing in the workspace depends on that — seeds are
//! only used for run-to-run determinism within this codebase.

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    /// Current keystream block, consumed front to back.
    block: [u8; 64],
    /// Next unconsumed byte in `block`; 64 = exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            let out = w.wrapping_add(state[i]);
            self.block[i * 4..i * 4 + 4].copy_from_slice(&out.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn take(&mut self, n: usize) -> &[u8] {
        debug_assert!(n <= 64);
        if self.index + n > 64 {
            self.refill();
        }
        let out = &self.block[self.index..self.index + n];
        self.index += n;
        out
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0u8; 64],
            index: 64,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.index >= 64 {
                self.refill();
            }
            let n = (64 - self.index).min(dest.len() - filled);
            dest[filled..filled + n].copy_from_slice(&self.block[self.index..self.index + n]);
            self.index += n;
            filled += n;
        }
    }
}
