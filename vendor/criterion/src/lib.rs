//! Vendored benchmark shim exposing the subset of the `criterion` API
//! this workspace's `[[bench]]` targets use.
//!
//! The build environment has no crates.io access. This shim keeps
//! `cargo bench` functional with wall-clock medians printed per
//! benchmark, but performs no statistical analysis, warm-up tuning, or
//! HTML reporting. Numbers are indicative, not rigorous.

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement marker types (only wall time is supported).
pub mod measurement {
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Trait unifying the id types accepted by `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median sample duration, recorded for the caller to report.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration, then `samples` timed ones.
        std::hint::black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.elapsed = times[times.len() / 2];
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(
        &mut self,
        group_name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
            _measurement: PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", &id.into_benchmark_id(), sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.id,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        // The shim keeps sampling modest; criterion's default of 100
        // samples is overkill without its statistics.
        samples: sample_size.min(20),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per_iter = b.elapsed.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench: {label:<50} median {:>12.3?}{rate}", b.elapsed);
}

/// `criterion_group!(name, target1, target2, …)` — config-less form only.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export kept for compatibility; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
